//! Anytime top-K ranking — progressive sampling with
//! confidence-interval pruning.
//!
//! Most pairs in an all-pairs `rank` are nowhere near the top-K
//! cutoff, yet the exact executor makes every pair pay the full sample
//! size `n`. This module implements the approximate-query-processing
//! counterpart: score every pair on a small prefix of its reference
//! sample, put a confidence interval around its *projected*
//! full-sample score, and only spend more samples on pairs whose
//! interval still straddles the running K-th-score cutoff.
//!
//! # The progressive loop
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            │ round m = n₀, 2n₀, 4n₀, …                      │
//!            │                                                │
//!  undecided │  PairSetPlan::build(undecided, cfg@m)          │
//!  pairs ───►│  → fused density pass (ONE BFS / distinct ref) │
//!            │  → score_m, budget c_m per pair                │
//!            │  → CI: ê = score_m/c_m, project to scale(n),   │
//!            │        half-width z₁₋ε/₂·√(2/m)·scale(n)       │
//!            │                                                │
//!            │  cutoffL = K-th largest lo                     │
//!            │  cutoffH = K-th largest hi                     │
//!            │    hi < cutoffL → OUT  (pruned at m)           │
//!            │    lo > cutoffH → IN   (score frozen at m)     │
//!            │    otherwise    → escalate to 2m ──────────────┼──┐
//!            └────────────────────────────────────────────────┘  │
//!                 ▲                                              │
//!                 └──────────────────────────────────────────────┘
//!            final round m = n: exact stage, CI-free — identical
//!            arithmetic to the exact executor on the survivors.
//! ```
//!
//! # The sample-prefix contract
//!
//! Escalation *extends* a pair's sample rather than resampling it:
//! each round re-enters the planner with the pair's **content seed**
//! unchanged, and every uniform sampler draws a sample whose first
//! `m` nodes are a bit-identical prefix of the full-`n` stream —
//! Batch BFS because a partial Fisher–Yates never revisits settled
//! positions, rejection and whole-graph sampling because the
//! accept/reject transcript up to the `m`-th accept is the same
//! regardless of the target size (asserted in `tests/anytime.rs` and
//! the unit tests below). Importance sampling is the exception — its
//! multiplicity weights are not prefix-stable — so importance requests
//! skip straight to the full-`n` round, mirroring the exact executor's
//! refusal to budget-prune weighted pairs.
//!
//! # eps = 0 is exact, bit for bit
//!
//! With `eps = 0` every interval is `(−∞, ∞)`: no pair is ever decided
//! early, every pair reaches the final round, and that round performs
//! the exact executor's own stage-(c) loop (same iteration order, same
//! significance-budget prune, same comparators) at the full sample
//! size with the same content seeds — so the ranked output is
//! bit-identical to [`crate::rank::RankMode::Exact`] across the whole
//! kernel × relabel × cache × thread matrix. The property suite in
//! `tests/anytime.rs` asserts this.

use crate::batch::{EventPair, PairOutcome};
use crate::engine::{Statistic, TescEngine, TescResult};
use crate::planner::PairSetPlan;
use crate::rank::{content_seed, direction_score, score_bound, RankEntry, RankReport, RankRequest};
use crate::sampler::SamplerKind;
use std::collections::HashSet;
use std::time::{Duration, Instant};
use tesc_graph::{Adjacency, Interrupted};
use tesc_stats::confidence::{
    projected_score_interval, spearman_scale, untied_kendall_scale, ScoreInterval,
};
use tesc_stats::rank::cmp_score_desc;

/// Smallest sample tier the progressive loop starts from: below this,
/// the normal approximation behind the interval is shaky and a round's
/// fixed costs dominate its savings.
pub const ANYTIME_FLOOR: usize = 50;

/// The geometric escalation schedule for a full sample size `n`:
/// repeatedly halve from `n` while the result stays ≥
/// [`ANYTIME_FLOOR`], then reverse — so tiers double `n₀ → 2n₀ → … →
/// n` and always end *exactly* at `n`. Importance-sampled requests
/// bypass the progressive tiers entirely (their weighted samples have
/// no prefix property), collapsing the schedule to `[n]`.
pub fn escalation_schedule(n: usize, sampler: SamplerKind) -> Vec<usize> {
    if matches!(sampler, SamplerKind::Importance { .. }) {
        return vec![n];
    }
    let mut tiers = vec![n];
    let mut m = n;
    while m / 2 >= ANYTIME_FLOOR {
        m /= 2;
        tiers.push(m);
    }
    tiers.reverse();
    tiers
}

/// A pair whose projected score was frozen before the final round.
struct FrozenIn {
    index: usize,
    score: f64,
    result: TescResult,
    decided_at_n: usize,
}

/// The progressive executor behind [`crate::rank::RankMode::Anytime`].
/// Called from [`crate::rank::rank_pairs_budgeted`]; requires
/// `req.top_k` to be set.
///
/// # Budget semantics
///
/// The engine's [`tesc_graph::Budget`] is checked before every
/// escalation tier (with a predictive skip: a tier is not even started
/// when less time remains than the *previous, half-sized* tier took)
/// and per pair inside every scoring loop. When the budget runs out
/// after at least one tier completed, the executor *degrades*: it
/// returns `Ok` with [`RankReport::degraded`] set, ranking the frozen
/// IN pairs, any final-round survivors already scored at full `n`, and
/// the projected point estimates of the last completed tier — each
/// entry's [`RankEntry::decided_at_n`] records the tier its score came
/// from. Only when *nothing* was decided yet does it return the typed
/// [`Interrupted`] error.
pub(crate) fn rank_pairs_anytime<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &RankRequest,
    eps: f64,
) -> Result<RankReport, Interrupted> {
    assert!(
        (0.0..1.0).contains(&eps),
        "anytime eps must be in [0, 1), got {eps}"
    );
    let start = Instant::now();
    let k = req.top_k.expect("anytime mode requires a top-K cutoff");
    let threads = req.effective_threads();
    let n = req.cfg.sample_size;
    let seeds: Vec<u64> = req
        .pairs
        .iter()
        .map(|p| content_seed(req.seed, &p.a, &p.b))
        .collect();
    let schedule = escalation_schedule(n, req.cfg.sampler);

    let mut undecided: Vec<usize> = (0..req.pairs.len()).collect();
    let mut frozen: Vec<FrozenIn> = Vec::new();
    let mut failed: Vec<PairOutcome> = Vec::new();
    let mut pruned = 0usize;
    let (mut distinct_refs, mut sampled_refs, mut fused_bfs) = (0usize, 0usize, 0u64);
    let mut rounds = 0usize;
    // (score, original index, result, decided_at_n) of final-round
    // survivors, accumulated exactly like the exact executor does.
    let mut computed: Vec<(f64, usize, TescResult, usize)> = Vec::new();
    // Projected point estimates of the last *completed* intermediate
    // tier, for every pair that stayed undecided there — the raw
    // material of a degraded report. Replaced wholesale each tier.
    let mut last_estimates: Vec<(f64, usize, TescResult, usize)> = Vec::new();
    let mut last_tier_wall = Duration::ZERO;
    let mut degraded = false;
    let budget = engine.budget();
    // Something rankable exists once any tier decided or estimated a
    // pair — the gate between degrading (Ok) and failing (Err).
    macro_rules! has_decided {
        () => {
            !(frozen.is_empty() && computed.is_empty() && last_estimates.is_empty())
        };
    }

    'tiers: for (tier, &m) in schedule.iter().enumerate() {
        if undecided.is_empty() {
            break;
        }
        // Budget gate: bail before the tier if already exhausted, or —
        // predictively — if less time remains than the previous
        // (half-sized, so ~2× cheaper) tier took, since starting a
        // tier we cannot finish only burns the time a degraded answer
        // could have been returned in.
        let predicted_short =
            tier > 0 && matches!(budget.remaining(), Some(rem) if rem < last_tier_wall);
        if let Err(i) = budget.check() {
            if !has_decided!() {
                return Err(i);
            }
            degraded = true;
            break 'tiers;
        }
        if predicted_short && has_decided!() {
            degraded = true;
            break 'tiers;
        }
        let tier_start = Instant::now();
        let is_final = tier + 1 == schedule.len();
        let cfg_m = req.cfg.with_sample_size(m);
        let sub_pairs: Vec<EventPair> = undecided.iter().map(|&i| req.pairs[i].clone()).collect();
        let sub_seeds: Vec<u64> = undecided.iter().map(|&i| seeds[i]).collect();
        let sub_threads = threads.clamp(1, sub_pairs.len());
        let plan = PairSetPlan::build(engine, &sub_pairs, &cfg_m, &sub_seeds, sub_threads);
        let fused = match plan.run_density_budgeted(sub_threads, budget) {
            Ok(fused) => fused,
            Err(i) => {
                if !has_decided!() {
                    return Err(i);
                }
                degraded = true;
                break 'tiers;
            }
        };
        rounds += 1;
        distinct_refs += plan.distinct_refs();
        sampled_refs += plan.sampled_refs();
        fused_bfs += fused.bfs_run();

        if is_final {
            // Exact arithmetic on the survivors: the stage-(c) loop of
            // the exact executor, with the running top-K budget seeded
            // by the already-frozen IN scores. With eps = 0 nothing was
            // frozen and `undecided` is every pair in index order, so
            // this block *is* the exact executor.
            let mut top_scores: Vec<f64> = frozen.iter().map(|f| f.score).collect();
            top_scores.sort_by(|a, b| cmp_score_desc(*a, *b));
            top_scores.truncate(k);
            for (pos, &index) in undecided.iter().enumerate() {
                if let Err(i) = budget.check() {
                    // Mid-final-round exhaustion: survivors already
                    // scored at full n stay; the rest fall back to
                    // their last-tier estimates at assembly.
                    if !has_decided!() {
                        return Err(i);
                    }
                    degraded = true;
                    break 'tiers;
                }
                let vectors = match plan.vectors(pos, &fused) {
                    Ok(v) => v,
                    Err(_) => {
                        failed.push(plan.finish_pair(pos, &fused));
                        continue;
                    }
                };
                if top_scores.len() >= k {
                    let cutoff = top_scores[k - 1];
                    if let Some(bound) = score_bound(&vectors, cfg_m.statistic) {
                        if bound < cutoff {
                            pruned += 1;
                            continue;
                        }
                    }
                }
                let result = plan.result_from_vectors(pos, &vectors);
                let score = direction_score(&result.outcome);
                if top_scores.len() < k || score > top_scores[k - 1] {
                    let at = top_scores.partition_point(|&s| s >= score);
                    top_scores.insert(at, score);
                    top_scores.truncate(k);
                }
                computed.push((score, index, result, m));
            }
            undecided.clear();
            break;
        }

        // Intermediate round: interval every pair we can, then run one
        // step of successive elimination against the K-th cutoffs.
        struct Scored {
            index: usize,
            ci: ScoreInterval,
            result: TescResult,
        }
        let mut scored: Vec<Scored> = Vec::new();
        let mut next: Vec<usize> = Vec::new(); // escalate unconditionally
        for (pos, &index) in undecided.iter().enumerate() {
            if let Err(i) = budget.check() {
                // Mid-tier exhaustion: this tier's partial scores are
                // discarded; earlier completed tiers carry the
                // degraded answer.
                if !has_decided!() {
                    return Err(i);
                }
                degraded = true;
                break 'tiers;
            }
            let Ok(vectors) = plan.vectors(pos, &fused) else {
                // A pair can fail at a small tier (e.g. the rejection
                // sampler's draw budget scales with m) yet succeed at
                // the full size; only the final round's verdict on
                // failures is authoritative.
                next.push(index);
                continue;
            };
            let Some(c_m) = score_bound(&vectors, cfg_m.statistic) else {
                next.push(index);
                continue;
            };
            let result = plan.result_from_vectors(pos, &vectors);
            let m_eff = result.n_refs;
            let n_eff = result.population_size.map_or(n, |p| n.min(p));
            let (u_m, u_n) = match cfg_m.statistic {
                Statistic::KendallTau => (untied_kendall_scale(m_eff), untied_kendall_scale(n_eff)),
                Statistic::SpearmanRho => (spearman_scale(m_eff), spearman_scale(n_eff)),
            };
            if c_m <= 0.0 || u_m <= 0.0 || m_eff < 2 {
                // Degenerate sample (all tied / too small): no usable
                // estimate, keep sampling.
                next.push(index);
                continue;
            }
            // Tie-penalty projection: carry the observed/untied scale
            // ratio forward instead of assuming a tie-free future.
            let scale_n = (c_m / u_m) * u_n;
            let score_m = direction_score(&result.outcome);
            let ci = projected_score_interval(score_m, c_m, scale_n, m_eff, eps);
            scored.push(Scored { index, ci, result });
        }

        // K-th-largest lower/upper cutoffs over every still-alive
        // candidate: scored intervals, frozen IN points, and the
        // unconditional escalators as (−∞, +∞) unknowns.
        let alive = scored.len() + next.len() + frozen.len();
        let mut survivors: Vec<Scored> = Vec::new();
        if alive > k {
            let mut lows: Vec<f64> = scored.iter().map(|s| s.ci.lo).collect();
            let mut highs: Vec<f64> = scored.iter().map(|s| s.ci.hi).collect();
            lows.extend(frozen.iter().map(|f| f.score));
            highs.extend(frozen.iter().map(|f| f.score));
            lows.extend(std::iter::repeat_n(f64::NEG_INFINITY, next.len()));
            highs.extend(std::iter::repeat_n(f64::INFINITY, next.len()));
            lows.sort_by(|a, b| cmp_score_desc(*a, *b));
            highs.sort_by(|a, b| cmp_score_desc(*a, *b));
            let cutoff_lo = lows[k - 1];
            let cutoff_hi = highs[k - 1];
            for s in scored {
                if s.ci.hi < cutoff_lo {
                    // ≥ K candidates are confidently better: out.
                    pruned += 1;
                } else if s.ci.lo > cutoff_hi {
                    // Confidently ahead of the K-th upper bound: in,
                    // score frozen at the projected point estimate.
                    frozen.push(FrozenIn {
                        index: s.index,
                        score: s.ci.point,
                        result: s.result,
                        decided_at_n: m,
                    });
                } else {
                    survivors.push(s);
                }
            }
        } else {
            // K or fewer candidates left: every survivor will be
            // reported, so keep refining them all.
            survivors = scored;
        }
        next.extend(survivors.iter().map(|s| s.index));
        // This tier completed: its survivors' projected point
        // estimates become the degradation fallback should the budget
        // die before the next tier finishes.
        last_estimates = survivors
            .into_iter()
            .map(|s| (s.ci.point, s.index, s.result, m))
            .collect();
        last_tier_wall = tier_start.elapsed();
        next.sort_unstable();
        undecided = next;
    }

    // Merge frozen IN pairs with final-round survivors and rank with
    // the exact executor's deterministic comparator. A degraded run
    // additionally falls back to the last completed tier's projected
    // estimates for every pair nothing later decided.
    if degraded {
        let decided: HashSet<usize> = frozen
            .iter()
            .map(|f| f.index)
            .chain(computed.iter().map(|c| c.1))
            .collect();
        computed.extend(
            last_estimates
                .into_iter()
                .filter(|e| !decided.contains(&e.1)),
        );
    }
    computed.extend(
        frozen
            .into_iter()
            .map(|f| (f.score, f.index, f.result, f.decided_at_n)),
    );
    computed.sort_by(|a, b| {
        cmp_score_desc(a.0, b.0)
            .then_with(|| req.pairs[a.1].label.cmp(&req.pairs[b.1].label))
            .then_with(|| seeds[a.1].cmp(&seeds[b.1]))
            .then(a.1.cmp(&b.1))
    });
    computed.truncate(k);
    let ranked = computed
        .into_iter()
        .enumerate()
        .map(|(pos, (score, index, result, decided_at_n))| RankEntry {
            rank: pos + 1,
            index,
            label: req.pairs[index].label.clone(),
            score,
            result,
            decided_at_n,
        })
        .collect();
    Ok(RankReport {
        ranked,
        pruned,
        failed,
        candidates: req.pairs.len(),
        distinct_refs,
        sampled_refs,
        fused_bfs,
        threads,
        rounds,
        degraded,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TescConfig;
    use crate::rank::{rank_pairs, RankMode};
    use crate::sampler::{batch_bfs_sample, rejection_sample, whole_graph_sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_events::NodeMask;
    use tesc_graph::generators::barabasi_albert;
    use tesc_graph::{BfsScratch, VicinityIndex};
    use tesc_stats::Tail;

    #[test]
    fn schedule_doubles_and_ends_at_n() {
        assert_eq!(
            escalation_schedule(300, SamplerKind::BatchBfs),
            [75, 150, 300]
        );
        assert_eq!(escalation_schedule(120, SamplerKind::Rejection), [60, 120]);
        assert_eq!(escalation_schedule(80, SamplerKind::WholeGraph), [80]);
        assert_eq!(
            escalation_schedule(1024, SamplerKind::BatchBfs),
            [64, 128, 256, 512, 1024]
        );
        // Importance sampling has no prefix property: single tier.
        assert_eq!(
            escalation_schedule(400, SamplerKind::Importance { batch_size: 3 }),
            [400]
        );
    }

    /// The sample-prefix contract, at the sampler level: for every
    /// uniform sampler, the first m nodes drawn for target size m are
    /// bit-identical to the first m nodes drawn for any larger target
    /// from the same seed.
    #[test]
    fn uniform_samplers_are_prefix_stable() {
        let g = barabasi_albert(800, 4, &mut StdRng::seed_from_u64(3));
        let idx = VicinityIndex::build(&g, 2);
        let events: Vec<u32> = (0..40u32).collect();
        let mask = NodeMask::from_nodes(g.num_nodes(), &events);
        let mut scratch = BfsScratch::new(g.num_nodes());
        for seed in 0..5u64 {
            for (m, full) in [(50usize, 100usize), (75, 300), (100, 400)] {
                let small = batch_bfs_sample(
                    &g,
                    &mut scratch,
                    &events,
                    2,
                    m,
                    &mut StdRng::seed_from_u64(seed),
                );
                let big = batch_bfs_sample(
                    &g,
                    &mut scratch,
                    &events,
                    2,
                    full,
                    &mut StdRng::seed_from_u64(seed),
                );
                assert_eq!(
                    small.nodes[..],
                    big.nodes[..m],
                    "batch_bfs seed {seed} m {m}"
                );

                let small = rejection_sample(
                    &g,
                    &mut scratch,
                    &events,
                    &mask,
                    &idx,
                    2,
                    m,
                    40 * m,
                    &mut StdRng::seed_from_u64(seed),
                );
                let big = rejection_sample(
                    &g,
                    &mut scratch,
                    &events,
                    &mask,
                    &idx,
                    2,
                    full,
                    40 * full,
                    &mut StdRng::seed_from_u64(seed),
                );
                assert_eq!(
                    small.nodes[..],
                    big.nodes[..m],
                    "rejection seed {seed} m {m}"
                );

                let small = whole_graph_sample(
                    &g,
                    &mut scratch,
                    &mask,
                    2,
                    m,
                    &mut StdRng::seed_from_u64(seed),
                );
                let big = whole_graph_sample(
                    &g,
                    &mut scratch,
                    &mask,
                    2,
                    full,
                    &mut StdRng::seed_from_u64(seed),
                );
                assert_eq!(
                    small.nodes[..],
                    big.nodes[..m],
                    "whole_graph seed {seed} m {m}"
                );
            }
        }
    }

    #[test]
    fn eps_zero_matches_exact_and_larger_eps_decides_early() {
        let g = barabasi_albert(1500, 4, &mut StdRng::seed_from_u64(7));
        let engine = TescEngine::new(&g);
        let mut req = RankRequest::new(
            TescConfig::new(1)
                .with_sample_size(240)
                .with_tail(Tail::Upper),
        )
        .with_seed(11)
        .with_threads(1)
        .with_top_k(3);
        // Three strongly attracted pairs (heavily overlapping blocks)
        // and seven near-independent ones (disjoint peripheral
        // blocks): the score spread a permissive eps can exploit.
        for i in 0..3u32 {
            let base = i * 40;
            req = req.with_pair(EventPair::new(
                format!("strong{i}"),
                (base..base + 50).collect(),
                (base + 10..base + 60).collect(),
            ));
        }
        for i in 0..7u32 {
            let (a, b) = (400 + i * 80, 1000 + i * 60);
            req = req.with_pair(EventPair::new(
                format!("null{i}"),
                (a..a + 40).collect(),
                (b..b + 40).collect(),
            ));
        }
        let exact = rank_pairs(&engine, &req);
        let zero = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(0.0)));
        assert_eq!(zero.rounds, 3, "240 → tiers [60, 120, 240]");
        assert_eq!(exact.ranked.len(), zero.ranked.len());
        for (e, z) in exact.ranked.iter().zip(&zero.ranked) {
            assert_eq!(e.label, z.label);
            assert_eq!(e.score.to_bits(), z.score.to_bits());
            assert_eq!(e.result, z.result);
            assert_eq!(z.decided_at_n, 240, "eps = 0 never decides early");
        }
        // A permissive eps decides some pairs before the full tier and
        // therefore samples fewer reference nodes in total.
        let loose = rank_pairs(&engine, &req.clone().with_mode(RankMode::anytime(0.4)));
        assert!(
            loose.sampled_refs < zero.sampled_refs,
            "eps 0.4 sampled {} refs, eps 0 sampled {}",
            loose.sampled_refs,
            zero.sampled_refs
        );
        assert!(loose
            .ranked
            .iter()
            .all(|e| e.decided_at_n <= 240 && e.decided_at_n >= 60));
    }

    #[test]
    fn anytime_without_top_k_runs_exact() {
        let g = barabasi_albert(600, 3, &mut StdRng::seed_from_u64(9));
        let engine = TescEngine::new(&g);
        let req = RankRequest::new(TescConfig::new(1).with_sample_size(100))
            .with_threads(1)
            .with_mode(RankMode::anytime(0.2))
            .with_pair(EventPair::new("a", (0..20).collect(), (5..25).collect()));
        let report = rank_pairs(&engine, &req);
        assert_eq!(report.rounds, 1, "no cutoff → exact single pass");
        assert_eq!(report.ranked.len(), 1);
        assert_eq!(report.ranked[0].decided_at_n, 100);
    }

    #[test]
    #[should_panic(expected = "eps must be in [0, 1)")]
    fn out_of_range_eps_rejected() {
        let _ = RankMode::anytime(1.0);
    }
}
