//! `tesc-serve` — a std-only HTTP/1.1 daemon over [`TescContext`].
//!
//! The context module made the core serving-shaped (immutable
//! versioned snapshots, non-blocking [`TescContext::snapshot`],
//! thread-safe engines); this module puts a socket in front of it.
//! The design follows the classic bounded-thread-pool server (the
//! shape YDB-class systems use per shard, scaled down to std):
//!
//! ```text
//!   accept loop ──► bounded connection queue ──► N worker threads
//!   (nonblocking,      (admission control:          (keep-alive
//!    polls shutdown)     full ⇒ 503 at the door)     request loop)
//!                                                        │
//!             ┌──────────────────────────────────────────┤
//!             ▼ queries (concurrent)                     ▼ ingests (serialized)
//!   Snapshot::engine / run_batch / rank_pairs    stage + /commit ⇒ writer path
//!   against ONE pinned snapshot per request      publishes version v+1, v+2, …
//! ```
//!
//! * **Queries never block ingestion and vice versa.** Each query
//!   pins the current snapshot (`Arc` clone) and runs entirely
//!   against it; the response echoes the snapshot version so clients
//!   can assert consistency.
//! * **Admission control is explicit.** The connection queue is
//!   bounded; when it is full the accept loop answers 503 directly
//!   and closes, so overload degrades loudly instead of queueing
//!   without bound.
//! * **Long-lived serving needs a bounded cache.** Pair servers with
//!   [`TescContext::with_cache_budget`]: the per-snapshot
//!   [`DensityCache`](crate::cache::DensityCache) then evicts under a
//!   byte budget (second-chance policy) with bit-identical results.
//! * **Workers never die.** Handlers run under `catch_unwind`; a
//!   panicking handler produces a 500 and the worker lives on.
//!
//! See `docs/SERVING.md` for the endpoint reference and operational
//! guidance, and `tests/serve.rs` for the black-box contract.

pub mod http;
pub mod json;
pub mod metrics;
mod router;

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::context::TescContext;
use http::{HttpError, Response};
use metrics::Metrics;
use tesc_graph::NodeId;

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads; each serves one connection at a time.
    pub workers: usize,
    /// Accepted-but-unserved connections held before the accept loop
    /// starts answering 503.
    pub queue_depth: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Enable the test-only endpoints (`POST /sleep`). Integration
    /// suites use them to make timing-sensitive behavior
    /// deterministic; production configs leave this off.
    pub debug_endpoints: bool,
    /// Append one JSON line per handled request (`ts_us`, `endpoint`,
    /// `status`, `bytes`, `us`, `version`) to this file. `None`
    /// disables access logging.
    pub access_log: Option<PathBuf>,
    /// Deadline applied to query requests that do not carry their own
    /// `deadline_ms`. `None` leaves such requests unbudgeted.
    pub default_deadline: Option<Duration>,
    /// Hard cap on per-request `deadline_ms` values; larger requests
    /// are clamped down to this. `None` accepts any client deadline.
    pub max_deadline: Option<Duration>,
    /// Slowloris guard: total wall-clock budget for reading one
    /// request (head + body) once its first byte arrives. Clients that
    /// trickle bytes slower than this get a 408 and the connection
    /// closed.
    pub max_request_read: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            max_body_bytes: 1 << 20,
            debug_endpoints: false,
            access_log: None,
            default_deadline: None,
            max_deadline: None,
            max_request_read: Duration::from_secs(5),
        }
    }
}

/// Edge/event deltas staged by `POST /edges` / `POST /events`,
/// applied atomically by `POST /commit`.
#[derive(Debug, Default)]
pub(crate) struct Staged {
    pub(crate) edges: Vec<(NodeId, NodeId)>,
    pub(crate) events: Vec<(String, Vec<NodeId>)>,
}

/// Bounded MPMC hand-off between the accept loop and the workers.
///
/// `push` fails (returning the connection) when the queue is at
/// capacity — that is the admission-control point. `pop` blocks until
/// a connection arrives or the queue is closed *and* drained, which
/// is exactly the graceful-shutdown contract: queued connections are
/// still served after shutdown begins.
#[derive(Debug)]
pub(crate) struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner {
    /// Accepted connections with their enqueue instants, so workers
    /// can report queue-wait time to the metrics histogram.
    items: VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue a connection; gives it back, tagged with the rejection
    /// cause, if the queue is full or closed (the caller answers 503).
    fn push(&self, stream: TcpStream) -> Result<(), (TcpStream, metrics::RejectCause)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err((stream, metrics::RejectCause::ShuttingDown));
        }
        if inner.items.len() >= self.capacity {
            return Err((stream, metrics::RejectCause::QueueFull));
        }
        inner.items.push_back((stream, Instant::now()));
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next connection and its enqueue instant; `None`
    /// once closed and drained.
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(entry) = inner.items.pop_front() {
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Stop accepting new connections and wake blocked workers; the
    /// backlog still drains.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Everything the handlers see. One instance per server, shared by
/// the accept loop and all workers.
#[derive(Debug)]
pub(crate) struct ServerState {
    pub(crate) ctx: TescContext,
    pub(crate) staged: Mutex<Staged>,
    pub(crate) metrics: Metrics,
    pub(crate) queue: ConnQueue,
    pub(crate) shutdown: AtomicBool,
    pub(crate) debug_endpoints: bool,
    pub(crate) queue_depth: usize,
    pub(crate) workers: usize,
    pub(crate) max_body_bytes: usize,
    pub(crate) default_deadline: Option<Duration>,
    pub(crate) max_deadline: Option<Duration>,
    pub(crate) max_request_read: Duration,
    pub(crate) started: Instant,
    /// Structured access log sink (append mode, flushed per record so
    /// lines survive a crash of the daemon).
    access_log: Option<Mutex<BufWriter<File>>>,
}

impl ServerState {
    /// Append one JSON line to the access log (no-op when disabled).
    /// `bytes` is the response body length; `version` the context
    /// version at response time.
    fn log_access(&self, endpoint: &str, status: u16, bytes: usize, elapsed: Duration) {
        let Some(log) = &self.access_log else { return };
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let line = format!(
            "{{\"ts_us\":{ts_us},\"endpoint\":\"{endpoint}\",\"status\":{status},\
             \"bytes\":{bytes},\"us\":{},\"version\":{}}}\n",
            elapsed.as_micros() as u64,
            self.ctx.version(),
        );
        let mut w = log.lock().expect("access log lock poisoned");
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// A running server: the listener thread, the worker pool, and the
/// handles to stop them.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the worker pool and the accept loop, and return.
    /// The server owns `ctx`; point clients at [`Server::addr`].
    pub fn spawn(ctx: TescContext, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let access_log = match &cfg.access_log {
            Some(path) => Some(Mutex::new(BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
            None => None,
        };
        let state = Arc::new(ServerState {
            ctx,
            staged: Mutex::new(Staged::default()),
            metrics: Metrics::default(),
            queue: ConnQueue::new(cfg.queue_depth.max(1)),
            shutdown: AtomicBool::new(false),
            debug_endpoints: cfg.debug_endpoints,
            queue_depth: cfg.queue_depth.max(1),
            workers,
            max_body_bytes: cfg.max_body_bytes,
            default_deadline: cfg.default_deadline,
            max_deadline: cfg.max_deadline,
            max_request_read: cfg.max_request_read,
            started: Instant::now(),
            access_log,
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("tesc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_state = state.clone();
        let accept_handle = std::thread::Builder::new()
            .name("tesc-serve-accept".into())
            .spawn(move || accept_loop(listener, &accept_state))
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            state,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (use this after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Has shutdown been requested (via [`Server::shutdown`] or
    /// `POST /shutdown`)?
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from outside (equivalent to `POST /shutdown`).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
    }

    /// Block until the accept loop and every worker have exited —
    /// i.e. until all queued connections have drained. Call after
    /// [`Server::shutdown`] (or let `POST /shutdown` trigger it).
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Shut down and wait for the drain in one call.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// How often the nonblocking accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Idle read timeout on worker connections: bounds how long a worker
/// camps on a silent keep-alive peer before re-checking shutdown.
const IDLE_TICK: Duration = Duration::from_millis(50);

fn accept_loop(listener: TcpListener, state: &ServerState) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            state.queue.close();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Err((mut rejected, cause)) = state.queue.push(stream) {
                    // Admission control: the pool is saturated (or
                    // draining for shutdown). Answer at the door so
                    // the client sees backpressure instead of an
                    // unbounded queue, with a Retry-After hint.
                    state.metrics.record_rejected_connection(cause);
                    let message = match cause {
                        metrics::RejectCause::QueueFull => "server is at capacity",
                        metrics::RejectCause::ShuttingDown => "server is shutting down",
                    };
                    let resp =
                        Response::error(503, "Service Unavailable", message).with_retry_after(1);
                    let _ = rejected.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = resp.send(&mut rejected, true);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop(state: &ServerState) {
    while let Some((stream, enqueued)) = state.queue.pop() {
        state.metrics.record_queue_wait(enqueued.elapsed());
        serve_connection(state, stream);
    }
}

/// Serve one connection: a keep-alive loop of read → route → respond.
/// In-flight requests always complete; after shutdown is requested
/// the final response carries `Connection: close` and the loop ends.
fn serve_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut stream = stream;
    loop {
        let request =
            match http::read_request(&mut reader, state.max_body_bytes, state.max_request_read) {
                Ok(req) => req,
                Err(HttpError::IdleTimeout) => {
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(e) => {
                    if let Some((status, reason)) = e.status() {
                        let resp = Response::error(status, reason, &e.message());
                        state
                            .metrics
                            .endpoint("other")
                            .record(status, Duration::ZERO);
                        state.log_access("other", status, resp.body.len(), Duration::ZERO);
                        let _ = resp.send(&mut stream, true);
                    }
                    return;
                }
            };
        let start = Instant::now();
        let (endpoint, response) =
            match std::panic::catch_unwind(AssertUnwindSafe(|| router::route(state, &request))) {
                Ok(handled) => handled,
                Err(_) => (
                    "other",
                    Response::error(
                        500,
                        "Internal Server Error",
                        "handler panicked; see server logs",
                    ),
                ),
            };
        state
            .metrics
            .endpoint(endpoint)
            .record(response.status, start.elapsed());
        state.log_access(
            endpoint,
            response.status,
            response.body.len(),
            start.elapsed(),
        );
        let closing = !request.keep_alive || state.shutdown.load(Ordering::SeqCst);
        if response.send(&mut stream, closing).is_err() || closing {
            let _ = stream.flush();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_accepts_up_to_capacity_then_rejects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let queue = ConnQueue::new(2);
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c1).is_ok());
        assert!(queue.push(c2).is_ok());
        match queue.push(c3) {
            Err((_, cause)) => assert_eq!(cause, metrics::RejectCause::QueueFull),
            Ok(()) => panic!("full queue must return the stream"),
        }
        assert!(queue.pop().is_some());
        let c4 = TcpStream::connect(addr).unwrap();
        assert!(queue.push(c4).is_ok(), "popping frees a slot");
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let queue = ConnQueue::new(4);
        queue.push(TcpStream::connect(addr).unwrap()).unwrap();
        queue.close();
        assert!(queue.pop().is_some(), "backlog still drains after close");
        assert!(queue.pop().is_none(), "then pop reports closed");
        match queue.push(TcpStream::connect(addr).unwrap()) {
            Err((_, cause)) => assert_eq!(cause, metrics::RejectCause::ShuttingDown),
            Ok(()) => panic!("closed queue must refuse new connections"),
        }
    }
}
