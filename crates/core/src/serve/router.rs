//! Request routing and JSON responders for the serving daemon.
//!
//! Each handler follows the same shape: pin a snapshot, parse and
//! validate the body (every validation failure is a 4xx — handlers
//! never panic on client input), run the existing engine / planner /
//! rank / ingestion path, and echo the snapshot version in the
//! response so clients can assert which version served them.
//!
//! **Bit-identity contract.** Query responses carry `z_bits` — the
//! IEEE-754 bit pattern of the z-score as a hex string — so clients
//! can compare server results against offline runs exactly, without
//! trusting decimal round-trips. A `/test` with seed `s` is bit-
//! identical to `Snapshot::engine().test(a, b, &cfg, &mut
//! StdRng::seed_from_u64(s))` on the echoed version; `/batch`,
//! `/rank` and `/top-k` replay through `Snapshot::run_batch` and
//! `rank_pairs` the same way.

use std::sync::atomic::Ordering;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use super::http::{Method, Request, Response};
use super::json::{obj, Json};
use super::ServerState;
use crate::batch::{run_batch_budgeted, BatchRequest, EventPair};
use crate::engine::{Statistic, TescConfig, TescError, TescResult};
use crate::rank::{rank_pairs_budgeted, RankMode, RankRequest};
use crate::sampler::SamplerKind;
use tesc_graph::{Budget, Interrupted, NodeId};
use tesc_stats::significance::Verdict;
use tesc_stats::{SignificanceLevel, Tail, TestOutcome};

/// Route a parsed request to its handler. Returns the endpoint key
/// (for metrics) and the response.
pub(super) fn route(state: &ServerState, req: &Request) -> (&'static str, Response) {
    // Content negotiation before any handler: a POST body explicitly
    // declared as non-JSON is a 415, and a client that cannot accept
    // JSON responses gets a 406 (every endpoint answers JSON only).
    // Absent headers pass — plain `curl` stays usable.
    if req.method == Method::Post && !req.body.is_empty() && !req.content_type_is_json() {
        return (
            "other",
            Response::error(
                415,
                "Unsupported Media Type",
                &format!(
                    "request bodies must be application/json, not {}",
                    req.content_type.as_deref().unwrap_or("unknown")
                ),
            ),
        );
    }
    if !req.accepts_json() {
        return (
            "other",
            Response::error(
                406,
                "Not Acceptable",
                "this server only produces application/json responses",
            ),
        );
    }
    match (req.method, req.path.as_str()) {
        (Method::Post, "/test") => ("test", handle_test(state, req)),
        (Method::Post, "/batch") => ("batch", handle_batch(state, req)),
        (Method::Post, "/rank") => ("rank", handle_rank(state, req, false)),
        (Method::Post, "/top-k") => ("top_k", handle_rank(state, req, true)),
        (Method::Post, "/edges") => ("edges", handle_edges(state, req)),
        (Method::Post, "/events") => ("events", handle_events(state, req)),
        (Method::Post, "/commit") => ("commit", handle_commit(state)),
        (Method::Get, "/stats") => ("stats", handle_stats(state)),
        (Method::Post, "/shutdown") => ("shutdown", handle_shutdown(state)),
        (Method::Post, "/sleep") if state.debug_endpoints => ("other", handle_sleep(req)),
        (Method::Get, path) | (Method::Post, path) => (
            "other",
            Response::error(404, "Not Found", &format!("no such endpoint: {path}")),
        ),
    }
}

/// Shorthand for a 400 with a message.
fn bad_request(message: &str) -> Response {
    Response::error(400, "Bad Request", message)
}

/// Resolve the deadline budget of one query request: an explicit
/// `deadline_ms` (clamped to the server's `--max-deadline`), else the
/// server's `--default-deadline`, else no budget at all. Returns the
/// budget plus the effective limit for echoing in 504 bodies.
fn parse_deadline(
    body: &Json,
    state: &ServerState,
) -> Result<Option<(Budget, Duration)>, Response> {
    let requested = match body.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(ms) if ms >= 1 => Some(Duration::from_millis(ms)),
            _ => return Err(bad_request("`deadline_ms` must be an integer ≥ 1")),
        },
    };
    let effective = match (requested, state.max_deadline) {
        (Some(d), Some(max)) => Some(d.min(max)),
        (Some(d), None) => Some(d),
        (None, _) => state.default_deadline,
    };
    Ok(effective.map(|d| (Budget::with_deadline(d), d)))
}

/// The 504 a deadline-exhausted query maps to, with the elapsed time
/// and the limit surfaced so clients can size their next deadline.
/// Also bumps the timeout/cancel counters.
fn interrupted_response(state: &ServerState, i: &Interrupted, limit: Duration) -> Response {
    if i.cancelled {
        state.metrics.record_cancelled();
    } else {
        state.metrics.record_timeout();
    }
    Response {
        status: 504,
        reason: "Gateway Timeout",
        body: obj([
            ("error", Json::Str(i.to_string())),
            ("elapsed_ms", Json::Int(i.elapsed.as_millis() as i64)),
            ("deadline_ms", Json::Int(limit.as_millis() as i64)),
            ("cancelled", Json::Bool(i.cancelled)),
        ])
        .encode(),
        retry_after: None,
    }
}

/// Parse the body as a JSON object (an empty body reads as `{}`).
fn parse_body(req: &Request) -> Result<Json, Response> {
    if req.body.is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| bad_request("request body is not valid UTF-8"))?;
    let value = Json::parse(text).map_err(|e| bad_request(&e.to_string()))?;
    match value {
        Json::Obj(_) => Ok(value),
        _ => Err(bad_request("request body must be a JSON object")),
    }
}

/// Parse the test configuration knobs shared by every query endpoint:
/// `h`, `n`, `tail`, `sampler` (+`batch_size`), `statistic`, `alpha`,
/// plus the RNG `seed` and worker `threads`.
fn parse_config(body: &Json, max_level: u32) -> Result<(TescConfig, u64, usize), Response> {
    let h = match body.get("h") {
        None => 1,
        Some(v) => match v.as_u64() {
            Some(h) if (1..=max_level as u64).contains(&h) => h as u32,
            _ => {
                return Err(bad_request(&format!(
                    "`h` must be an integer in 1..={max_level} (the server's vicinity level)"
                )))
            }
        },
    };
    let mut cfg = TescConfig::new(h);
    match body.get("n") {
        None => cfg = cfg.with_sample_size(300),
        Some(v) => match v.as_u64() {
            Some(n) if n >= 3 => cfg = cfg.with_sample_size(n as usize),
            _ => return Err(bad_request("`n` must be an integer ≥ 3")),
        },
    }
    if let Some(v) = body.get("tail") {
        cfg = cfg.with_tail(match v.as_str() {
            Some("upper") => Tail::Upper,
            Some("lower") => Tail::Lower,
            Some("two-sided") | Some("two_sided") => Tail::TwoSided,
            _ => {
                return Err(bad_request(
                    "`tail` must be \"upper\", \"lower\" or \"two-sided\"",
                ))
            }
        });
    }
    if let Some(v) = body.get("sampler") {
        cfg = cfg.with_sampler(match v.as_str() {
            Some("batch-bfs") | Some("batch_bfs") => SamplerKind::BatchBfs,
            Some("rejection") => SamplerKind::Rejection,
            Some("whole-graph") | Some("whole_graph") => SamplerKind::WholeGraph,
            Some("importance") => {
                let batch_size = match body.get("batch_size") {
                    None => 3,
                    Some(b) => match b.as_u64() {
                        Some(b) if b >= 1 => b as usize,
                        _ => return Err(bad_request("`batch_size` must be an integer ≥ 1")),
                    },
                };
                SamplerKind::Importance { batch_size }
            }
            _ => return Err(bad_request(
                "`sampler` must be \"batch-bfs\", \"rejection\", \"importance\" or \"whole-graph\"",
            )),
        });
    }
    if let Some(v) = body.get("statistic") {
        cfg = cfg.with_statistic(match v.as_str() {
            Some("kendall") => Statistic::KendallTau,
            Some("spearman") => Statistic::SpearmanRho,
            _ => {
                return Err(bad_request(
                    "`statistic` must be \"kendall\" or \"spearman\"",
                ))
            }
        });
    }
    if let Some(v) = body.get("alpha") {
        match v.as_f64() {
            Some(a) if a > 0.0 && a < 1.0 => cfg = cfg.with_alpha(SignificanceLevel::new(a)),
            _ => return Err(bad_request("`alpha` must be a number in (0, 1)")),
        }
    }
    // Seeds ride the exact-integer lane of the codec; values past
    // i64::MAX are not representable in JSON and are rejected.
    let seed = match body.get("seed") {
        None => 0,
        Some(v) => match v.as_u64() {
            Some(s) => s,
            None => {
                return Err(bad_request(
                    "`seed` must be a non-negative integer ≤ 2^63-1",
                ))
            }
        },
    };
    let threads = match body.get("threads") {
        None => 1, // concurrency comes from the worker pool, not per-request fan-out
        Some(v) => match v.as_u64() {
            Some(t) if t <= 64 => t as usize,
            _ => return Err(bad_request("`threads` must be an integer in 0..=64")),
        },
    };
    Ok((cfg, seed, threads))
}

/// Parse a JSON array of node ids, bounds-checked against the graph.
fn parse_nodes(value: &Json, field: &str, num_nodes: usize) -> Result<Vec<NodeId>, Response> {
    let items = value
        .as_array()
        .ok_or_else(|| bad_request(&format!("`{field}` must be an array of node ids")))?;
    let mut nodes = Vec::with_capacity(items.len());
    for item in items {
        match item.as_u64() {
            Some(v) if (v as usize) < num_nodes => nodes.push(v as NodeId),
            _ => {
                return Err(bad_request(&format!(
                    "`{field}` entries must be integers in 0..{num_nodes}"
                )))
            }
        }
    }
    Ok(nodes)
}

/// Resolve a registered event name to its occurrence list.
fn nodes_by_name<'s>(
    snap: &'s crate::context::Snapshot,
    name: &str,
) -> Result<&'s [NodeId], Response> {
    match snap.events().id_by_name(name) {
        Some(id) => Ok(snap.events().nodes(id)),
        None => Err(bad_request(&format!("unknown event \"{name}\""))),
    }
}

fn verdict_str(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::PositiveCorrelation => "positive",
        Verdict::NegativeCorrelation => "negative",
        Verdict::Independent => "independent",
    }
}

/// The JSON shape of one completed test outcome.
fn outcome_json(outcome: &TestOutcome) -> Vec<(&'static str, Json)> {
    vec![
        ("statistic", Json::Num(outcome.statistic)),
        ("z", Json::Num(outcome.z)),
        ("z_bits", Json::Str(format!("{:016x}", outcome.z.to_bits()))),
        ("p_value", Json::Num(outcome.p_value)),
        ("verdict", Json::Str(verdict_str(outcome.verdict).into())),
    ]
}

fn result_json(result: &TescResult) -> Json {
    let mut members = outcome_json(&result.outcome);
    members.push(("n_refs", Json::Int(result.n_refs as i64)));
    members.push((
        "population_size",
        match result.population_size {
            Some(n) => Json::Int(n as i64),
            None => Json::Null,
        },
    ));
    members.push(("draws", Json::Int(result.draws as i64)));
    obj(members)
}

fn handle_test(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let snap = state.ctx.snapshot();
    let (cfg, seed, _) = match parse_config(&body, state.ctx.max_level()) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let num_nodes = snap.graph().num_nodes();
    // Either explicit occurrence lists (`a`, `b`) or two registered
    // event names (`events`).
    let (a, b): (Vec<NodeId>, Vec<NodeId>) =
        match (body.get("a"), body.get("b"), body.get("events")) {
            (Some(a), Some(b), None) => {
                let a = match parse_nodes(a, "a", num_nodes) {
                    Ok(n) => n,
                    Err(r) => return r,
                };
                let b = match parse_nodes(b, "b", num_nodes) {
                    Ok(n) => n,
                    Err(r) => return r,
                };
                (a, b)
            }
            (None, None, Some(events)) => {
                let names = match events.as_array() {
                    Some(pair) if pair.len() == 2 => pair,
                    _ => return bad_request("`events` must be an array of two event names"),
                };
                let (na, nb) = match (names[0].as_str(), names[1].as_str()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return bad_request("`events` entries must be strings"),
                };
                let a = match nodes_by_name(&snap, na) {
                    Ok(n) => n.to_vec(),
                    Err(r) => return r,
                };
                let b = match nodes_by_name(&snap, nb) {
                    Ok(n) => n.to_vec(),
                    Err(r) => return r,
                };
                (a, b)
            }
            _ => {
                return bad_request(
                    "provide either occurrence lists `a` and `b`, or `events`: [nameA, nameB]",
                )
            }
        };
    let deadline = match parse_deadline(&body, state) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let mut engine = snap.engine();
    if let Some((budget, _)) = &deadline {
        engine = engine.with_budget(budget.clone());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match engine.test(&a, &b, &cfg, &mut rng) {
        Ok(result) => {
            let mut members = vec![
                ("version", Json::Int(snap.version() as i64)),
                ("seed", Json::Int(seed as i64)),
            ];
            members.push(("result", result_json(&result)));
            Response::ok(obj(members).encode())
        }
        Err(TescError::Interrupted(i)) => {
            let limit = deadline.map(|(_, d)| d).unwrap_or_default();
            interrupted_response(state, &i, limit)
        }
        Err(e) => Response::error(422, "Unprocessable Entity", &e.to_string()),
    }
}

/// Parse the `pairs` member shared by `/batch`, `/rank` and `/top-k`:
/// an array whose entries are either `[nameA, nameB]` name pairs or
/// `{"label", "a", "b"}` explicit pairs.
fn parse_pairs(
    snap: &crate::context::Snapshot,
    pairs: &Json,
    num_nodes: usize,
) -> Result<Vec<EventPair>, Response> {
    let items = pairs
        .as_array()
        .ok_or_else(|| bad_request("`pairs` must be an array"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Json::Arr(names) if names.len() == 2 => {
                let (na, nb) = match (names[0].as_str(), names[1].as_str()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(bad_request("name pairs must be [string, string]")),
                };
                let a = nodes_by_name(snap, na)?.to_vec();
                let b = nodes_by_name(snap, nb)?.to_vec();
                out.push(EventPair::new(format!("{na}×{nb}"), a, b));
            }
            Json::Obj(_) => {
                let label = item
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("pair")
                    .to_string();
                let a = parse_nodes(item.get("a").unwrap_or(&Json::Null), "pairs[].a", num_nodes)?;
                let b = parse_nodes(item.get("b").unwrap_or(&Json::Null), "pairs[].b", num_nodes)?;
                out.push(EventPair::new(label, a, b));
            }
            _ => {
                return Err(bad_request(
                    "`pairs` entries must be [nameA, nameB] or {label, a, b}",
                ))
            }
        }
    }
    Ok(out)
}

fn handle_batch(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let snap = state.ctx.snapshot();
    let (cfg, seed, threads) = match parse_config(&body, state.ctx.max_level()) {
        Ok(c) => c,
        Err(r) => return r,
    };
    let pairs = match body.get("pairs") {
        Some(p) => match parse_pairs(&snap, p, snap.graph().num_nodes()) {
            Ok(p) => p,
            Err(r) => return r,
        },
        None => return bad_request("`pairs` is required"),
    };
    if pairs.is_empty() {
        return bad_request("`pairs` must not be empty");
    }
    let deadline = match parse_deadline(&body, state) {
        Ok(d) => d,
        Err(r) => return r,
    };
    let mut breq = BatchRequest::new(cfg);
    breq.pairs = pairs;
    breq.seed = seed;
    breq.threads = threads;
    let report = match &deadline {
        None => snap.run_batch(&breq),
        Some((budget, limit)) => {
            match run_batch_budgeted(&snap.engine().with_budget(budget.clone()), &breq) {
                Ok(report) => report,
                Err(i) => return interrupted_response(state, &i, *limit),
            }
        }
    };
    let outcomes: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| {
            let mut members = vec![
                ("index", Json::Int(o.index as i64)),
                ("label", Json::Str(o.label.clone())),
            ];
            match &o.result {
                Ok(r) => {
                    members.push(("ok", Json::Bool(true)));
                    members.push(("result", result_json(r)));
                }
                Err(e) => {
                    members.push(("ok", Json::Bool(false)));
                    members.push(("error", Json::Str(e.to_string())));
                }
            }
            obj(members)
        })
        .collect();
    Response::ok(
        obj([
            ("version", Json::Int(snap.version() as i64)),
            ("seed", Json::Int(seed as i64)),
            ("threads", Json::Int(report.threads as i64)),
            ("outcomes", Json::Arr(outcomes)),
        ])
        .encode(),
    )
}

fn handle_rank(state: &ServerState, req: &Request, top_k: bool) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let snap = state.ctx.snapshot();
    let (cfg, seed, threads) = match parse_config(&body, state.ctx.max_level()) {
        Ok(c) => c,
        Err(r) => return r,
    };
    // Candidates: explicit `pairs`, or all registered pairs involving
    // `focus`, or every registered pair.
    let pairs = match (body.get("pairs"), body.get("focus")) {
        (Some(p), _) => match parse_pairs(&snap, p, snap.graph().num_nodes()) {
            Ok(p) => p,
            Err(r) => return r,
        },
        (None, Some(focus)) => {
            let name = match focus.as_str() {
                Some(n) => n,
                None => return bad_request("`focus` must be an event name"),
            };
            let id = match snap.events().id_by_name(name) {
                Some(id) => id,
                None => return bad_request(&format!("unknown event \"{name}\"")),
            };
            snap.events()
                .pairs_with(id)
                .into_iter()
                .map(|(a, b)| snap.event_pair(a, b))
                .collect()
        }
        (None, None) => snap
            .events()
            .event_pairs()
            .into_iter()
            .map(|(a, b)| snap.event_pair(a, b))
            .collect::<Vec<_>>(),
    };
    if pairs.is_empty() {
        return bad_request("no candidate pairs (register events or pass `pairs`)");
    }
    let mut rreq = RankRequest::new(cfg)
        .with_seed(seed)
        .with_threads(threads)
        .with_pairs(pairs);
    if top_k {
        let k = match body.get("k") {
            None => 10,
            Some(v) => match v.as_u64() {
                Some(k) if k >= 1 => k as usize,
                _ => return bad_request("`k` must be an integer ≥ 1"),
            },
        };
        rreq = rreq.with_top_k(k);
    }
    // `mode`: "exact" (default) or "anytime:EPS" — the progressive
    // executor; only meaningful with a top-K cutoff (exact otherwise).
    let mode = match body.get("mode") {
        None => RankMode::Exact,
        Some(v) => match v.as_str() {
            Some("exact") => RankMode::Exact,
            Some(s) => match s.strip_prefix("anytime:").and_then(|e| e.parse().ok()) {
                Some(eps) if (0.0..1.0).contains(&eps) => RankMode::Anytime { eps },
                _ => {
                    return bad_request(
                        "`mode` must be \"exact\" or \"anytime:EPS\" with 0 ≤ EPS < 1",
                    )
                }
            },
            None => return bad_request("`mode` must be a string"),
        },
    };
    let deadline = match parse_deadline(&body, state) {
        Ok(d) => d,
        Err(r) => return r,
    };
    // A deadline-bound ranking always runs the progressive executor so
    // it can degrade to the best decided ranking instead of 504ing:
    // the client's eps is kept if it asked for anytime, else eps = 0
    // (bit-identical to exact when the run finishes in time), and a
    // plain /rank gets an implicit K covering every candidate.
    let mode = match (&deadline, mode) {
        (Some(_), RankMode::Exact) => RankMode::Anytime { eps: 0.0 },
        (_, m) => m,
    };
    if deadline.is_some() && rreq.top_k.is_none() {
        let all = rreq.pairs.len();
        rreq = rreq.with_top_k(all);
    }
    rreq = rreq.with_mode(mode);
    let report = match &deadline {
        None => crate::rank::rank_pairs(&snap.engine(), &rreq),
        Some((budget, limit)) => {
            match rank_pairs_budgeted(&snap.engine().with_budget(budget.clone()), &rreq) {
                Ok(report) => report,
                Err(i) => return interrupted_response(state, &i, *limit),
            }
        }
    };
    if report.degraded {
        state.metrics.record_degraded();
        state.metrics.record_timeout();
    }
    let ranked: Vec<Json> = report
        .ranked
        .iter()
        .map(|e| {
            let mut members = vec![
                ("rank", Json::Int(e.rank as i64)),
                ("index", Json::Int(e.index as i64)),
                ("label", Json::Str(e.label.clone())),
                ("score", Json::Num(e.score)),
                ("decided_at_n", Json::Int(e.decided_at_n as i64)),
            ];
            members.push(("result", result_json(&e.result)));
            obj(members)
        })
        .collect();
    let failed: Vec<Json> = report
        .failed
        .iter()
        .map(|o| {
            obj([
                ("label", Json::Str(o.label.clone())),
                (
                    "error",
                    Json::Str(match &o.result {
                        Err(e) => e.to_string(),
                        Ok(_) => "unexpected success".into(),
                    }),
                ),
            ])
        })
        .collect();
    let mut members = vec![
        ("version", Json::Int(snap.version() as i64)),
        ("seed", Json::Int(seed as i64)),
        ("mode", Json::Str(mode.to_string())),
        ("rounds", Json::Int(report.rounds as i64)),
        ("candidates", Json::Int(report.candidates as i64)),
        ("pruned", Json::Int(report.pruned as i64)),
        ("distinct_refs", Json::Int(report.distinct_refs as i64)),
    ];
    // Only deadline-bound requests carry the degradation marker, so
    // deadline-free responses stay byte-identical to earlier releases.
    if let Some((_, limit)) = &deadline {
        members.push(("deadline_ms", Json::Int(limit.as_millis() as i64)));
        members.push(("degraded", Json::Bool(report.degraded)));
    }
    members.push(("ranked", Json::Arr(ranked)));
    members.push(("failed", Json::Arr(failed)));
    Response::ok(obj(members).encode())
}

fn handle_edges(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let edges = match body.get("edges").and_then(Json::as_array) {
        Some(e) => e,
        None => return bad_request("`edges` must be an array of [u, v] pairs"),
    };
    let mut parsed = Vec::with_capacity(edges.len());
    for edge in edges {
        match edge.as_array() {
            Some([u, v]) => match (u.as_u64(), v.as_u64()) {
                (Some(u), Some(v)) if u <= NodeId::MAX as u64 && v <= NodeId::MAX as u64 => {
                    parsed.push((u as NodeId, v as NodeId))
                }
                _ => return bad_request("edge endpoints must be node ids"),
            },
            _ => return bad_request("`edges` entries must be [u, v] pairs"),
        }
    }
    let mut staged = state.staged.lock().expect("staged lock poisoned");
    staged.edges.extend(parsed);
    Response::ok(
        obj([
            ("version", Json::Int(state.ctx.version() as i64)),
            ("staged_edges", Json::Int(staged.edges.len() as i64)),
            ("staged_events", Json::Int(staged.events.len() as i64)),
        ])
        .encode(),
    )
}

fn handle_events(state: &ServerState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let name = match body.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => n.to_string(),
        _ => return bad_request("`name` must be a non-empty string"),
    };
    let snap = state.ctx.snapshot();
    let nodes = match body.get("nodes") {
        Some(n) => match parse_nodes(n, "nodes", snap.graph().num_nodes()) {
            Ok(n) => n,
            Err(r) => return r,
        },
        None => return bad_request("`nodes` is required"),
    };
    let mut staged = state.staged.lock().expect("staged lock poisoned");
    staged.events.push((name, nodes));
    Response::ok(
        obj([
            ("version", Json::Int(snap.version() as i64)),
            ("staged_edges", Json::Int(staged.edges.len() as i64)),
            ("staged_events", Json::Int(staged.events.len() as i64)),
        ])
        .encode(),
    )
}

/// Apply everything staged since the last commit as a sequence of
/// writer-path ingests. All validation runs against the pre-commit
/// snapshot *before* anything is applied, so a rejected commit
/// publishes nothing; the staged lock is held across validate + apply,
/// serializing concurrent commits.
fn handle_commit(state: &ServerState) -> Response {
    let mut staged = state.staged.lock().expect("staged lock poisoned");
    let base = state.ctx.snapshot();
    if staged.edges.is_empty() && staged.events.is_empty() {
        return Response::ok(
            obj([
                ("version", Json::Int(base.version() as i64)),
                ("committed", Json::Bool(false)),
            ])
            .encode(),
        );
    }
    // Validate everything first: a rejected commit publishes nothing
    // (the staged batch is kept, so the client can repair and retry).
    if let Err(e) = base.graph().check_edges(&staged.edges) {
        return bad_request(&format!("staged edges rejected: {e}"));
    }
    let num_nodes = base.graph().num_nodes();
    let mut new_names: Vec<&str> = Vec::new();
    for (name, nodes) in &staged.events {
        if let Some(&node) = nodes.iter().find(|&&v| v as usize >= num_nodes) {
            return bad_request(&format!(
                "staged event \"{name}\" references node {node}, graph has {num_nodes} nodes"
            ));
        }
        if base.events().id_by_name(name).is_none() {
            if new_names.contains(&name.as_str()) {
                return bad_request(&format!("staged batch registers \"{name}\" twice"));
            }
            new_names.push(name.as_str());
        }
    }
    // Apply. After the checks above the writer path cannot reject;
    // each step bumps the version, so one commit can advance it by
    // more than one (clients key on the echoed post-commit version).
    let mut edges_added = false;
    if !staged.edges.is_empty() {
        match state.ctx.add_edges(&staged.edges) {
            Ok(snap) => edges_added = snap.version() != base.version(),
            Err(e) => {
                return Response::error(500, "Internal Server Error", &format!("edge apply: {e}"))
            }
        }
    }
    let mut applied = Vec::with_capacity(staged.events.len());
    for (name, nodes) in &staged.events {
        let result = match state.ctx.snapshot().events().id_by_name(name) {
            Some(id) => state.ctx.add_event_occurrences(id, nodes).map(|_| ()),
            None => state.ctx.add_event(name.clone(), nodes.clone()).map(|_| ()),
        };
        if let Err(e) = result {
            return Response::error(
                500,
                "Internal Server Error",
                &format!("event apply \"{name}\": {e}"),
            );
        }
        applied.push(Json::Str(name.clone()));
    }
    staged.edges.clear();
    staged.events.clear();
    Response::ok(
        obj([
            ("version", Json::Int(state.ctx.version() as i64)),
            ("committed", Json::Bool(true)),
            ("edges_applied", Json::Bool(edges_added)),
            ("events_applied", Json::Arr(applied)),
        ])
        .encode(),
    )
}

fn handle_stats(state: &ServerState) -> Response {
    let snap = state.ctx.snapshot();
    let cache = snap.density_cache();
    let staged = state.staged.lock().expect("staged lock poisoned");
    Response::ok(
        obj([
            ("version", Json::Int(snap.version() as i64)),
            (
                "uptime_us",
                Json::Int(state.started.elapsed().as_micros().min(i64::MAX as u128) as i64),
            ),
            ("workers", Json::Int(state.workers as i64)),
            (
                "queue",
                obj([
                    ("capacity", Json::Int(state.queue_depth as i64)),
                    (
                        "rejected_connections",
                        Json::Int(state.metrics.rejected_connections() as i64),
                    ),
                    (
                        "rejected_queue_full",
                        Json::Int(state.metrics.rejected_queue_full() as i64),
                    ),
                    (
                        "rejected_shutdown",
                        Json::Int(state.metrics.rejected_shutdown() as i64),
                    ),
                    (
                        "wait_us_log2",
                        Json::Arr(
                            state
                                .metrics
                                .queue_wait_histogram()
                                .iter()
                                .map(|&c| Json::Int(c as i64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "deadlines",
                obj([
                    ("timeouts", Json::Int(state.metrics.timeouts() as i64)),
                    ("cancelled", Json::Int(state.metrics.cancelled() as i64)),
                    ("degraded", Json::Int(state.metrics.degraded() as i64)),
                    (
                        "default_deadline_ms",
                        match state.default_deadline {
                            Some(d) => Json::Int(d.as_millis() as i64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "max_deadline_ms",
                        match state.max_deadline {
                            Some(d) => Json::Int(d.as_millis() as i64),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("endpoints", state.metrics.to_json()),
            (
                "cache",
                obj([
                    ("hits", Json::Int(cache.hits() as i64)),
                    ("misses", Json::Int(cache.misses() as i64)),
                    ("bfs_invocations", Json::Int(cache.bfs_invocations() as i64)),
                    ("evictions", Json::Int(cache.evictions() as i64)),
                    ("resident_bytes", Json::Int(cache.resident_bytes() as i64)),
                    ("fresh_inserts", Json::Int(cache.fresh_inserts() as i64)),
                    ("entries", Json::Int(cache.len() as i64)),
                    (
                        "byte_budget",
                        match cache.byte_budget() {
                            Some(b) => Json::Int(b as i64),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            ("memory", {
                let mem = snap.memory();
                obj([
                    ("graph_plain_bytes", Json::Int(mem.graph_plain_bytes as i64)),
                    (
                        "graph_compressed_bytes",
                        Json::Int(mem.graph_compressed_bytes as i64),
                    ),
                    ("event_bytes", Json::Int(mem.event_bytes as i64)),
                    (
                        "cache_resident_bytes",
                        Json::Int(cache.resident_bytes() as i64),
                    ),
                ])
            }),
            (
                "staged",
                obj([
                    ("edges", Json::Int(staged.edges.len() as i64)),
                    ("events", Json::Int(staged.events.len() as i64)),
                ]),
            ),
        ])
        .encode(),
    )
}

fn handle_shutdown(state: &ServerState) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue.close();
    Response::ok(obj([("shutting_down", Json::Bool(true))]).encode())
}

/// Debug-only: hold a worker for `ms` milliseconds. The integration
/// suite uses this to make admission control and shutdown draining
/// deterministic; production servers never enable it.
fn handle_sleep(req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let ms = match body.get("ms").and_then(Json::as_u64) {
        Some(ms) if ms <= 10_000 => ms,
        _ => return bad_request("`ms` must be an integer ≤ 10000"),
    };
    std::thread::sleep(Duration::from_millis(ms));
    Response::ok(obj([("slept_ms", Json::Int(ms as i64))]).encode())
}
