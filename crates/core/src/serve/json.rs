//! A minimal, dependency-free JSON codec for the serving layer.
//!
//! The workspace is std-only by charter, so the daemon carries its own
//! (small, strict) JSON implementation instead of pulling in `serde`.
//! Two properties matter for the serving contract and are guaranteed
//! here:
//!
//! * **Integers round-trip exactly.** [`Json::Int`] keeps `i64` values
//!   out of the `f64` lane, so version stamps, node ids and seeds do
//!   not get mangled past 2^53. (Seeds ≥ 2^63 are not representable in
//!   JSON numbers; the endpoints document that limit.)
//! * **Floats round-trip bit-exactly.** Serialization uses Rust's
//!   shortest-round-trip `Display` for `f64`, and the responders
//!   additionally expose raw bit patterns (`z_bits`) as hex strings so
//!   clients can compare results for bit-identity without trusting any
//!   decimal formatting at all.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match wins), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` (integers only — floats don't coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's f64 Display is shortest-round-trip: the
                    // printed decimal parses back to the same bits.
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    if !out[start..].contains(['.', 'e']) {
                        // Whole-valued floats print as "2" — keep them
                        // in the float lane across a round trip.
                        out.push_str(".0");
                    }
                } else {
                    // NaN/±inf are not JSON; clients get null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A JSON syntax error with a byte offset, surfaced to clients in 400
/// responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap — malicious bodies cannot blow the parse stack.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::at(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(&c) => Err(JsonError::at(
            *pos,
            format!("unexpected character {:?}", c as char),
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "non-UTF-8 number"))?;
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("bad number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are rejected rather than
                        // recombined; the endpoints never emit them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError::at(*pos, "invalid \\u code point"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(JsonError::at(*pos, "control character in string"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "non-UTF-8 string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Json::Int(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], Json::Num(2.5));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        let reparsed = Json::parse(&v.encode()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn integers_survive_past_f64_precision() {
        let big = (1i64 << 60) + 1;
        let doc = format!("{{\"v\":{big}}}");
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("v").unwrap().as_i64(), Some(big));
        assert_eq!(v.encode(), doc);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.0, 0.0] {
            let encoded = Json::Num(x).encode();
            match Json::parse(&encoded).unwrap() {
                Json::Num(y) => assert_eq!(x.to_bits(), y.to_bits(), "{encoded}"),
                Json::Int(i) => assert_eq!(x, i as f64, "{encoded}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn whole_valued_floats_stay_floats() {
        assert_eq!(Json::Num(2.0).encode(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "+5",
            "\u{0}",
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escapes_strings_on_output() {
        let v = Json::Str("a\"b\\c\nd\u{0001}".into());
        let enc = v.encode();
        assert_eq!(enc, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&enc).unwrap(), v);
    }
}
