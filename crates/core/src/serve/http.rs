//! A strict, std-only HTTP/1.1 subset for the serving daemon.
//!
//! The daemon speaks exactly as much HTTP as its endpoints need:
//! `GET`/`POST` with `Content-Length` bodies, keep-alive, and a fixed
//! set of response headers. Everything else — chunked bodies, upgrade
//! requests, header lines past the size cap — is rejected with a 4xx
//! before any handler runs. The parser never panics on malformed
//! input; every failure maps to a [`HttpError`] and from there to a
//! status code, which is what the malformed-input integration tests
//! lock down.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::time::{Duration, Instant};

/// Cap on the request line + headers, before the body.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` (anything else is rejected at parse time).
    pub method: Method,
    /// The path component, e.g. `/test` (query strings are not used).
    pub path: String,
    /// Raw body bytes (empty for bodyless requests).
    pub body: Vec<u8>,
    /// Did the client ask to keep the connection open afterwards?
    pub keep_alive: bool,
    /// The `Content-Type` header, lowercased, parameters stripped
    /// (`application/json; charset=utf-8` → `application/json`).
    /// `None` when the header was absent.
    pub content_type: Option<String>,
    /// The raw `Accept` header (`None` when absent).
    pub accept: Option<String>,
}

impl Request {
    /// Does the declared `Content-Type` allow a JSON body? Absent
    /// headers are allowed (curl-without-headers compatibility);
    /// anything explicitly non-JSON is not.
    pub fn content_type_is_json(&self) -> bool {
        match &self.content_type {
            None => true,
            Some(ct) => ct == "application/json",
        }
    }

    /// Can the client accept an `application/json` response? Absent
    /// headers and the wildcard forms (`*/*`, `application/*`) are
    /// fine; an `Accept` listing only other media types is not.
    pub fn accepts_json(&self) -> bool {
        match &self.accept {
            None => true,
            Some(raw) => raw.split(',').any(|entry| {
                let media = entry.split(';').next().unwrap_or("").trim();
                media.eq_ignore_ascii_case("application/json")
                    || media.eq_ignore_ascii_case("application/*")
                    || media == "*/*"
            }),
        }
    }
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints (`/stats`).
    Get,
    /// Everything else.
    Post,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line
    /// (normal keep-alive termination — not an error to report).
    ConnectionClosed,
    /// The read timeout fired while the connection was idle (no byte
    /// of a next request seen yet). The worker uses these ticks to
    /// poll the shutdown flag between keep-alive requests.
    IdleTimeout,
    /// Reading from the socket failed (timeout mid-request, reset).
    Io(io::Error),
    /// The request is malformed; respond 400 and close.
    BadRequest(String),
    /// The method is not `GET`/`POST`; respond 405.
    MethodNotAllowed(String),
    /// The declared body exceeds the configured cap; respond 413.
    PayloadTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The client took longer than the per-request read budget to
    /// deliver its head + body (slowloris guard); respond 408 and
    /// close. Unlike [`HttpError::IdleTimeout`] this fires on a
    /// connection that *is* trickling bytes — total read time is
    /// bounded from the first byte of a request, not per read.
    RequestTimeout {
        /// The configured total-read budget.
        limit: Duration,
    },
}

impl HttpError {
    /// The status line this error maps to (`None` for connection-level
    /// conditions that get no response at all).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::ConnectionClosed | HttpError::IdleTimeout | HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::MethodNotAllowed(_) => Some((405, "Method Not Allowed")),
            HttpError::PayloadTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::RequestTimeout { .. } => Some((408, "Request Timeout")),
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::ConnectionClosed => "connection closed".into(),
            HttpError::IdleTimeout => "idle timeout".into(),
            HttpError::Io(e) => format!("i/o error: {e}"),
            HttpError::BadRequest(m) => m.clone(),
            HttpError::MethodNotAllowed(m) => format!("method {m} not allowed"),
            HttpError::PayloadTooLarge { declared, limit } => {
                format!("payload of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::RequestTimeout { limit } => format!(
                "request not fully received within the {} ms read budget",
                limit.as_millis()
            ),
        }
    }
}

/// Read one request off the connection.
///
/// `max_body` caps the accepted `Content-Length`; oversized payloads
/// are rejected *before* reading the body, so a hostile client cannot
/// make the server buffer arbitrary data.
///
/// `max_read` bounds the *total* wall-clock time spent reading the
/// request, head and body together, measured from the first byte — the
/// slowloris guard. A client that trickles one byte per idle tick
/// keeps every individual read alive but still runs out of this
/// budget and gets a 408. The clock does not run while the connection
/// idles *between* requests (that is [`HttpError::IdleTimeout`]'s
/// job).
pub fn read_request<R: Read>(
    reader: &mut BufReader<R>,
    max_body: usize,
    max_read: Duration,
) -> Result<Request, HttpError> {
    // Distinguish "idle between requests" from "stalled mid-request":
    // a timeout before the first byte of the next request is an idle
    // tick (the worker re-polls), afterwards it is a dead connection.
    match reader.fill_buf() {
        Ok([]) => return Err(HttpError::ConnectionClosed),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Err(HttpError::IdleTimeout)
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    // First byte of a request is buffered: the total-read clock starts.
    let deadline = ReadDeadline {
        at: Instant::now() + max_read,
        limit: max_read,
    };
    let request_line = read_line_capped(reader, MAX_HEAD_BYTES, &deadline)?;
    if request_line.is_empty() {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(other) => return Err(HttpError::MethodNotAllowed(other.to_string())),
        None => return Err(HttpError::BadRequest("empty request line".into())),
    };
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request path".into()))?
        .to_string();
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => {
            return Err(HttpError::BadRequest(
                "expected HTTP/1.0 or HTTP/1.1".into(),
            ))
        }
    }
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line".into()));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut content_type = None;
    let mut accept = None;
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    loop {
        let line = read_line_capped(reader, head_budget, &deadline)?;
        head_budget = head_budget.saturating_sub(line.len() + 2);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line `{line}`")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".into(),
            ));
        } else if name.eq_ignore_ascii_case("content-type") {
            let media = value.split(';').next().unwrap_or("").trim();
            content_type = Some(media.to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value.to_string());
        }
    }

    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        deadline.check()?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::BadRequest("truncated request body".into())),
            Ok(n) => filled += n,
            // Socket read timeouts mid-body are retried until the
            // total-read deadline, not treated as dead connections:
            // the deadline is what bounds a trickling client.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Request {
        method,
        path,
        body,
        keep_alive,
        content_type,
        accept,
    })
}

/// The running total-read deadline of one request (slowloris guard).
struct ReadDeadline {
    at: Instant,
    limit: Duration,
}

impl ReadDeadline {
    fn check(&self) -> Result<(), HttpError> {
        if Instant::now() >= self.at {
            Err(HttpError::RequestTimeout { limit: self.limit })
        } else {
            Ok(())
        }
    }
}

/// Read one CRLF-terminated line, capped at `cap` bytes and bounded by
/// the request's total-read deadline. An empty return with no bytes
/// read means the peer closed the connection.
fn read_line_capped<R: Read>(
    reader: &mut BufReader<R>,
    cap: usize,
    deadline: &ReadDeadline,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        if line.len() > cap {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        deadline.check()?;
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(String::new());
                }
                return Err(HttpError::BadRequest("truncated request head".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()));
                }
                line.push(byte[0]);
            }
            // Mid-head socket timeout: keep waiting until the total
            // deadline says otherwise.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// JSON body.
    pub body: String,
    /// Optional `Retry-After` header value in seconds (sent with 503
    /// rejections so well-behaved clients back off instead of
    /// hammering a saturated server).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            reason: "OK",
            body,
            retry_after: None,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Response {
            status,
            reason,
            body: super::json::obj([("error", super::json::Json::Str(message.to_string()))])
                .encode(),
            retry_after: None,
        }
    }

    /// Attach a `Retry-After: secs` header.
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Serialize (status line + headers + body) onto the stream.
    /// `close` adds `Connection: close` (keep-alive otherwise).
    pub fn send(&self, stream: &mut impl Write, close: bool) -> io::Result<()> {
        let retry_after = match self.retry_after {
            Some(secs) => format!("Retry-After: {secs}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.body.len(),
            retry_after,
            if close { "close" } else { "keep-alive" },
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}
