//! A strict, std-only HTTP/1.1 subset for the serving daemon.
//!
//! The daemon speaks exactly as much HTTP as its endpoints need:
//! `GET`/`POST` with `Content-Length` bodies, keep-alive, and a fixed
//! set of response headers. Everything else — chunked bodies, upgrade
//! requests, header lines past the size cap — is rejected with a 4xx
//! before any handler runs. The parser never panics on malformed
//! input; every failure maps to a [`HttpError`] and from there to a
//! status code, which is what the malformed-input integration tests
//! lock down.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Cap on the request line + headers, before the body.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` (anything else is rejected at parse time).
    pub method: Method,
    /// The path component, e.g. `/test` (query strings are not used).
    pub path: String,
    /// Raw body bytes (empty for bodyless requests).
    pub body: Vec<u8>,
    /// Did the client ask to keep the connection open afterwards?
    pub keep_alive: bool,
    /// The `Content-Type` header, lowercased, parameters stripped
    /// (`application/json; charset=utf-8` → `application/json`).
    /// `None` when the header was absent.
    pub content_type: Option<String>,
    /// The raw `Accept` header (`None` when absent).
    pub accept: Option<String>,
}

impl Request {
    /// Does the declared `Content-Type` allow a JSON body? Absent
    /// headers are allowed (curl-without-headers compatibility);
    /// anything explicitly non-JSON is not.
    pub fn content_type_is_json(&self) -> bool {
        match &self.content_type {
            None => true,
            Some(ct) => ct == "application/json",
        }
    }

    /// Can the client accept an `application/json` response? Absent
    /// headers and the wildcard forms (`*/*`, `application/*`) are
    /// fine; an `Accept` listing only other media types is not.
    pub fn accepts_json(&self) -> bool {
        match &self.accept {
            None => true,
            Some(raw) => raw.split(',').any(|entry| {
                let media = entry.split(';').next().unwrap_or("").trim();
                media.eq_ignore_ascii_case("application/json")
                    || media.eq_ignore_ascii_case("application/*")
                    || media == "*/*"
            }),
        }
    }
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints (`/stats`).
    Get,
    /// Everything else.
    Post,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line
    /// (normal keep-alive termination — not an error to report).
    ConnectionClosed,
    /// The read timeout fired while the connection was idle (no byte
    /// of a next request seen yet). The worker uses these ticks to
    /// poll the shutdown flag between keep-alive requests.
    IdleTimeout,
    /// Reading from the socket failed (timeout mid-request, reset).
    Io(io::Error),
    /// The request is malformed; respond 400 and close.
    BadRequest(String),
    /// The method is not `GET`/`POST`; respond 405.
    MethodNotAllowed(String),
    /// The declared body exceeds the configured cap; respond 413.
    PayloadTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl HttpError {
    /// The status line this error maps to (`None` for connection-level
    /// conditions that get no response at all).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::ConnectionClosed | HttpError::IdleTimeout | HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::MethodNotAllowed(_) => Some((405, "Method Not Allowed")),
            HttpError::PayloadTooLarge { .. } => Some((413, "Payload Too Large")),
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::ConnectionClosed => "connection closed".into(),
            HttpError::IdleTimeout => "idle timeout".into(),
            HttpError::Io(e) => format!("i/o error: {e}"),
            HttpError::BadRequest(m) => m.clone(),
            HttpError::MethodNotAllowed(m) => format!("method {m} not allowed"),
            HttpError::PayloadTooLarge { declared, limit } => {
                format!("payload of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

/// Read one request off the connection.
///
/// `max_body` caps the accepted `Content-Length`; oversized payloads
/// are rejected *before* reading the body, so a hostile client cannot
/// make the server buffer arbitrary data.
pub fn read_request<R: Read>(
    reader: &mut BufReader<R>,
    max_body: usize,
) -> Result<Request, HttpError> {
    // Distinguish "idle between requests" from "stalled mid-request":
    // a timeout before the first byte of the next request is an idle
    // tick (the worker re-polls), afterwards it is a dead connection.
    match reader.fill_buf() {
        Ok([]) => return Err(HttpError::ConnectionClosed),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Err(HttpError::IdleTimeout)
        }
        Err(e) => return Err(HttpError::Io(e)),
    }
    let request_line = read_line_capped(reader, MAX_HEAD_BYTES)?;
    if request_line.is_empty() {
        return Err(HttpError::ConnectionClosed);
    }
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        Some(other) => return Err(HttpError::MethodNotAllowed(other.to_string())),
        None => return Err(HttpError::BadRequest("empty request line".into())),
    };
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request path".into()))?
        .to_string();
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        _ => {
            return Err(HttpError::BadRequest(
                "expected HTTP/1.0 or HTTP/1.1".into(),
            ))
        }
    }
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line".into()));
    }

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut content_type = None;
    let mut accept = None;
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    loop {
        let line = read_line_capped(reader, head_budget)?;
        head_budget = head_budget.saturating_sub(line.len() + 2);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line `{line}`")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".into(),
            ));
        } else if name.eq_ignore_ascii_case("content-type") {
            let media = value.split(';').next().unwrap_or("").trim();
            content_type = Some(media.to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value.to_string());
        }
    }

    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method,
        path,
        body,
        keep_alive,
        content_type,
        accept,
    })
}

/// Read one CRLF-terminated line, capped at `cap` bytes. An empty
/// return with no bytes read means the peer closed the connection.
fn read_line_capped<R: Read>(reader: &mut BufReader<R>, cap: usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        if line.len() > cap {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(String::new());
                }
                return Err(HttpError::BadRequest("truncated request head".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            reason: "OK",
            body,
        }
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Response {
            status,
            reason,
            body: super::json::obj([("error", super::json::Json::Str(message.to_string()))])
                .encode(),
        }
    }

    /// Serialize (status line + headers + body) onto the stream.
    /// `close` adds `Connection: close` (keep-alive otherwise).
    pub fn send(&self, stream: &mut impl Write, close: bool) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}
