//! Lock-free per-endpoint request counters for `GET /stats`.
//!
//! Every handled request records its endpoint, status class and
//! latency with a handful of relaxed atomic adds — no locks on the
//! serving hot path. `/stats` reads are monotone snapshots: each
//! counter is exact, though counters read at slightly different
//! instants (a request may be counted in `requests` before its
//! latency lands in `total_us`). The integration suite reconciles
//! totals only at quiescent points.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use super::json::{obj, Json};

/// The endpoints the router serves, in `/stats` output order.
pub const ENDPOINTS: [&str; 10] = [
    "test", "batch", "rank", "top_k", "edges", "events", "commit", "stats", "shutdown", "other",
];

/// Number of log₂-microsecond latency buckets per endpoint. Bucket `i`
/// counts requests with `⌊log₂(max(us, 1))⌋ = i`, i.e. latencies in
/// `[2^i, 2^{i+1})` µs (bucket 0 also absorbs sub-µs requests); the
/// last bucket absorbs everything `≥ 2^23` µs (≈ 8.4 s).
pub const LATENCY_BUCKETS: usize = 24;

/// The bucket a latency falls into (see [`LATENCY_BUCKETS`]).
#[inline]
fn latency_bucket(us: u64) -> usize {
    let idx = 63 - us.max(1).leading_zeros() as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    latency_log2_us: [AtomicU64; LATENCY_BUCKETS],
}

impl EndpointStats {
    /// Record one handled request.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.ok,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        self.latency_log2_us[latency_bucket(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the log₂-µs latency histogram.
    pub fn latency_histogram(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.latency_log2_us) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Requests counted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// 5xx responses counted so far.
    pub fn server_errors(&self) -> u64 {
        self.server_errors.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        obj([
            ("requests", Json::Int(self.requests() as i64)),
            ("ok", Json::Int(self.ok.load(Ordering::Relaxed) as i64)),
            (
                "client_errors",
                Json::Int(self.client_errors.load(Ordering::Relaxed) as i64),
            ),
            (
                "server_errors",
                Json::Int(self.server_errors.load(Ordering::Relaxed) as i64),
            ),
            (
                "total_us",
                Json::Int(self.total_us.load(Ordering::Relaxed) as i64),
            ),
            (
                "max_us",
                Json::Int(self.max_us.load(Ordering::Relaxed) as i64),
            ),
            (
                "latency_us_log2",
                Json::Arr(
                    self.latency_histogram()
                        .iter()
                        .map(|&c| Json::Int(c as i64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Why admission control turned a connection away (per-cause 503
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The bounded connection queue was at capacity.
    QueueFull,
    /// The server is shutting down and the queue is closed.
    ShuttingDown,
}

/// The server-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointStats; ENDPOINTS.len()],
    /// Connections turned away because the queue was full → 503.
    rejected_queue_full: AtomicU64,
    /// Connections turned away during shutdown drain → 503.
    rejected_shutdown: AtomicU64,
    /// Requests that exhausted their deadline budget → 504 (or a
    /// degraded 200 — see `degraded`).
    timeouts: AtomicU64,
    /// Requests interrupted by explicit cancellation rather than a
    /// deadline.
    cancelled: AtomicU64,
    /// Deadline-bound ranking requests answered with the best decided
    /// ranking so far (`"degraded": true`) instead of a 504.
    degraded: AtomicU64,
    /// Time connections spent queued between accept and a worker
    /// picking them up, as a log₂-µs histogram (same bucketing as the
    /// per-endpoint latency histograms).
    queue_wait_log2_us: [AtomicU64; LATENCY_BUCKETS],
}

impl Metrics {
    /// The stats slot for an endpoint key (unknown keys fold into
    /// `other`).
    pub fn endpoint(&self, key: &str) -> &EndpointStats {
        let idx = ENDPOINTS
            .iter()
            .position(|&e| e == key)
            .unwrap_or(ENDPOINTS.len() - 1);
        &self.endpoints[idx]
    }

    /// Count a connection rejected by admission control.
    pub fn record_rejected_connection(&self, cause: RejectCause) {
        match cause {
            RejectCause::QueueFull => &self.rejected_queue_full,
            RejectCause::ShuttingDown => &self.rejected_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Connections rejected so far (all causes).
    pub fn rejected_connections(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
            + self.rejected_shutdown.load(Ordering::Relaxed)
    }

    /// Connections rejected because the queue was full.
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
    }

    /// Connections rejected during shutdown.
    pub fn rejected_shutdown(&self) -> u64 {
        self.rejected_shutdown.load(Ordering::Relaxed)
    }

    /// Count one request whose deadline budget ran out.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request interrupted by cancellation.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one degraded (best-effort) ranking response.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline-exhausted requests so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Cancelled requests so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Degraded ranking responses so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Record how long a connection waited in the accept queue.
    pub fn record_queue_wait(&self, wait: Duration) {
        let us = wait.as_micros().min(u64::MAX as u128) as u64;
        self.queue_wait_log2_us[latency_bucket(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the queue-wait histogram (log₂-µs buckets).
    pub fn queue_wait_histogram(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.queue_wait_log2_us) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total 5xx responses across all endpoints.
    pub fn total_server_errors(&self) -> u64 {
        self.endpoints.iter().map(|e| e.server_errors()).sum()
    }

    /// The `endpoints` member of the `/stats` body.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            ENDPOINTS
                .iter()
                .zip(&self.endpoints)
                .map(|(name, stats)| (name.to_string(), stats.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_classify_by_status() {
        let m = Metrics::default();
        m.endpoint("test").record(200, Duration::from_micros(5));
        m.endpoint("test").record(400, Duration::from_micros(7));
        m.endpoint("test").record(500, Duration::from_micros(9));
        m.endpoint("nope").record(404, Duration::from_micros(1));
        assert_eq!(m.endpoint("test").requests(), 3);
        assert_eq!(m.endpoint("test").server_errors(), 1);
        assert_eq!(m.endpoint("other").requests(), 1);
        assert_eq!(m.total_server_errors(), 1);
        let json = m.to_json();
        let test = json.get("test").unwrap();
        assert_eq!(test.get("ok").unwrap().as_i64(), Some(1));
        assert_eq!(test.get("client_errors").unwrap().as_i64(), Some(1));
        assert_eq!(test.get("total_us").unwrap().as_i64(), Some(21));
        assert_eq!(test.get("max_us").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        assert_eq!(latency_bucket(0), 0, "sub-µs folds into bucket 0");
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(4), 2);
        assert_eq!(latency_bucket(1023), 9);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(
            latency_bucket(u64::MAX),
            LATENCY_BUCKETS - 1,
            "overflow clamps"
        );
        // Boundary law: every bucket i covers exactly [2^i, 2^{i+1}).
        for i in 0..LATENCY_BUCKETS - 1 {
            assert_eq!(latency_bucket(1u64 << i), i);
            assert_eq!(latency_bucket((1u64 << (i + 1)) - 1), i);
        }
    }

    #[test]
    fn histogram_counts_every_request_once() {
        let m = Metrics::default();
        let stats = m.endpoint("rank");
        for us in [0u64, 1, 5, 130, 130, 5000, 1 << 30] {
            stats.record(200, Duration::from_micros(us));
        }
        let h = stats.latency_histogram();
        assert_eq!(h.iter().sum::<u64>(), stats.requests());
        assert_eq!(h[0], 2, "0 and 1 µs share bucket 0");
        assert_eq!(h[2], 1, "5 µs → [4, 8)");
        assert_eq!(h[7], 2, "130 µs → [128, 256), twice");
        assert_eq!(h[12], 1, "5 ms → [4096, 8192) µs");
        assert_eq!(h[LATENCY_BUCKETS - 1], 1, "2^30 µs clamps to the top");
        // And the JSON snapshot carries the same counts.
        let json = m.to_json();
        let arr = json
            .get("rank")
            .unwrap()
            .get("latency_us_log2")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|j| j.as_i64().unwrap() as u64)
            .collect::<Vec<_>>();
        assert_eq!(arr, h.to_vec());
    }
}
