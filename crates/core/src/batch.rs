//! Parallel batch execution of many TESC tests — the throughput layer.
//!
//! A realistic workload (Sec. 5.3's DBLP study, an alerting pipeline,
//! an analytics dashboard) does not ask one question; it asks *all
//! keyword pairs of a scenario*. Those tests are independent, they
//! share the same read-only [`CsrGraph`](tesc_graph::CsrGraph) and
//! [`VicinityIndex`](tesc_graph::VicinityIndex), and each one spends
//! its time in `n` BFS searches — an embarrassingly parallel shape.
//!
//! [`run_batch`] executes a [`BatchRequest`] through the pair-set
//! query planner ([`crate::planner`]): pairs are sampled in parallel
//! with indexed output slots, the density work is **fused** into one
//! BFS per distinct reference node of the whole set, and the counts
//! are scattered back into per-pair statistics. (The pre-planner
//! per-pair executor survives as [`run_batch_per_pair`].) Three
//! invariants make every executor's result independent of thread
//! count and schedule:
//!
//! 1. **Shared state is read-only.** Graph and vicinity index are
//!    `Sync` and never written; the only mutable shared state is the
//!    engine's [`ScratchPool`](tesc_graph::ScratchPool), whose
//!    contents never influence results.
//! 2. **Per-test RNG streams.** Test `i` draws from
//!    `StdRng::seed_from_u64(pair_seed(seed, i))` — derived from the
//!    master seed and the test's index only, never from execution
//!    order. See [`pair_seed`].
//! 3. **Indexed output slots.** Sampling, fused densities and
//!    outcomes are all written to per-index slots; no reordering can
//!    occur.
//!
//! Consequently `run_batch` is **bit-identical** to [`run_batch_serial`]
//! (and to calling [`TescEngine::test`] yourself with the same derived
//! seeds) at every thread count — asserted by `tests/pipeline.rs`.
//!
//! **Cross-pair density cache.** Batch pair lists routinely share
//! events (one keyword tested against many others). Attach a
//! [`DensityCache`](crate::cache::DensityCache) to the engine
//! ([`TescEngine::with_density_cache`], or use a
//! [`Snapshot`](crate::context::Snapshot)-derived engine, which comes
//! pre-wired) and the per-reference-node `(event, node, h)` vicinity
//! counts are memoized across the whole run, so a shared event's
//! density BFS happens once per reference node instead of once per
//! pair. The cache stores the exact integers the BFS produces and
//! never the RNG's output, so determinism invariant (1) still holds:
//! cached, uncached, serial and parallel runs are all bit-identical
//! (also asserted by `tests/pipeline.rs`).
//!
//! ```
//! use tesc::batch::{BatchRequest, EventPair, run_batch};
//! use tesc::{TescConfig, TescEngine};
//! use tesc_graph::generators::grid;
//!
//! let g = grid(20, 20);
//! let engine = TescEngine::new(&g);
//! let req = BatchRequest::new(TescConfig::new(1).with_sample_size(50))
//!     .with_seed(7)
//!     .with_threads(4)
//!     .with_pair(EventPair::new("p0", (0..20).collect(), (10..30).collect()))
//!     .with_pair(EventPair::new("p1", (0..20).collect(), (380..400).collect()));
//! let report = run_batch(&engine, &req);
//! assert_eq!(report.outcomes.len(), 2);
//! ```

use crate::engine::{TescConfig, TescEngine, TescError, TescResult};
use rand::rngs::StdRng;
use rand::{SeedableRng, SplitMix64};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use tesc_graph::{Adjacency, Interrupted, NodeId, PARALLEL_MIN_NODES};
use tesc_stats::significance::Verdict;

/// Batch-side companion to [`PARALLEL_MIN_NODES`]: even on a graph
/// below that node threshold, a request with at least this many pairs
/// fans out — total batch work scales with the pair count, not the
/// graph size, so only the (tiny graph, short list) corner stays
/// serial.
pub const PARALLEL_MIN_PAIRS: usize = 64;

/// One event pair to test: a label plus the two occurrence node sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventPair {
    /// Human-readable identifier carried through to the report
    /// (e.g. `"sensor_network×wireless"`).
    pub label: String,
    /// Occurrence nodes of event `a` (any order, duplicates allowed).
    pub a: Vec<NodeId>,
    /// Occurrence nodes of event `b`.
    pub b: Vec<NodeId>,
}

impl EventPair {
    /// Bundle a labeled pair.
    pub fn new(label: impl Into<String>, a: Vec<NodeId>, b: Vec<NodeId>) -> Self {
        EventPair {
            label: label.into(),
            a,
            b,
        }
    }
}

/// A batch of TESC tests sharing one configuration, one master seed
/// and one thread budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The pairs to test, in report order.
    pub pairs: Vec<EventPair>,
    /// Configuration applied to every test.
    pub cfg: TescConfig,
    /// Master seed; test `i` uses the stream seeded with
    /// [`pair_seed`]`(seed, i)`.
    pub seed: u64,
    /// Worker threads. `0` means "all available parallelism"; `1`
    /// runs serially (identical results either way).
    pub threads: usize,
}

impl BatchRequest {
    /// Empty request with configuration `cfg`, seed 0, automatic
    /// thread count.
    pub fn new(cfg: TescConfig) -> Self {
        BatchRequest {
            pairs: Vec::new(),
            cfg,
            seed: 0,
            threads: 0,
        }
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Append one pair.
    pub fn with_pair(mut self, pair: EventPair) -> Self {
        self.pairs.push(pair);
        self
    }

    /// Append many pairs.
    pub fn with_pairs(mut self, pairs: impl IntoIterator<Item = EventPair>) -> Self {
        self.pairs.extend(pairs);
        self
    }

    /// The worker count this request resolves to on this machine.
    pub fn effective_threads(&self) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        requested.clamp(1, self.pairs.len().max(1))
    }
}

/// Outcome of one test of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PairOutcome {
    /// Position in [`BatchRequest::pairs`].
    pub index: usize,
    /// The pair's label, copied from the request.
    pub label: String,
    /// The test result (per-pair failures do not abort the batch).
    pub result: Result<TescResult, TescError>,
}

impl PairOutcome {
    /// The verdict, if the test ran.
    pub fn verdict(&self) -> Option<Verdict> {
        self.result.as_ref().ok().map(|r| r.outcome.verdict)
    }
}

/// Everything a batch run produced, plus throughput diagnostics.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One outcome per requested pair, in request order.
    pub outcomes: Vec<PairOutcome>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the fan-out (excludes request construction).
    pub wall: Duration,
}

impl BatchReport {
    /// Outcomes whose test completed and rejected the null hypothesis.
    pub fn significant(&self) -> impl Iterator<Item = &PairOutcome> {
        self.outcomes.iter().filter(|o| {
            o.result
                .as_ref()
                .map(|r| r.outcome.is_significant())
                .unwrap_or(false)
        })
    }

    /// Outcomes whose test failed (e.g. empty events).
    pub fn failures(&self) -> impl Iterator<Item = &PairOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err())
    }

    /// Completed tests per wall-clock second.
    pub fn tests_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// One-line human summary (`12 pairs, 5 significant, 0 failed,
    /// 34.2 tests/s on 4 threads`).
    pub fn summary(&self) -> String {
        format!(
            "{} pairs, {} significant, {} failed, {:.1} tests/s on {} thread{}",
            self.outcomes.len(),
            self.significant().count(),
            self.failures().count(),
            self.tests_per_sec(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

/// Deterministic per-test seed stream: mixes the master seed with the
/// test index through SplitMix64 so that (a) every test's RNG stream
/// is independent of execution order and thread count, and (b) nearby
/// indices land on statistically unrelated streams.
#[inline]
pub fn pair_seed(master_seed: u64, index: usize) -> u64 {
    let mut sm = SplitMix64(master_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

/// Run every test of `req` serially on the calling thread — the
/// reference implementation the parallel fan-out must match
/// bit-for-bit.
pub fn run_batch_serial<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &BatchRequest,
) -> BatchReport {
    let start = Instant::now();
    let outcomes = req
        .pairs
        .iter()
        .enumerate()
        .map(|(i, pair)| run_one(engine, req, i, pair))
        .collect();
    BatchReport {
        outcomes,
        threads: 1,
        wall: start.elapsed(),
    }
}

/// Run `req` through the pair-set query planner
/// ([`crate::planner::PairSetPlan`]): sample every pair in parallel,
/// then execute ONE fused density pass over the *deduplicated*
/// reference workset (one BFS per distinct reference node, scored
/// against every event touching it) and scatter the counts back into
/// per-pair results. Pair lists sharing events — the common batch
/// shape — thus share their density BFS work up front, instead of
/// re-walking vicinities once per pair and hoping the cache catches
/// the repeats.
///
/// Results are bit-identical to [`run_batch_serial`] for every thread
/// count; see the module docs for why. *Small* requests — a graph
/// below [`PARALLEL_MIN_NODES`] **and** fewer than
/// [`PARALLEL_MIN_PAIRS`] pairs — run serially regardless of the
/// requested thread count: per-test BFS work on tiny graphs is
/// cheaper than spawning workers, but batch work scales with the pair
/// count, so a long pair list parallelizes even on a tiny graph. The
/// node threshold is shared with `VicinityIndex::build_parallel` so
/// the two fan-out decisions cannot drift apart.
pub fn run_batch<G: Adjacency>(engine: &TescEngine<'_, G>, req: &BatchRequest) -> BatchReport {
    let start = Instant::now();
    match run_batch_budgeted(engine, req) {
        Ok(report) => report,
        // Only reachable when the engine carries a real budget: report
        // every pair as interrupted rather than hiding the exhaustion.
        Err(i) => BatchReport {
            outcomes: req
                .pairs
                .iter()
                .enumerate()
                .map(|(index, pair)| PairOutcome {
                    index,
                    label: pair.label.clone(),
                    result: Err(TescError::Interrupted(i)),
                })
                .collect(),
            threads: req.effective_threads(),
            wall: start.elapsed(),
        },
    }
}

/// [`run_batch`] under the engine's [`Budget`](tesc_graph::Budget)
/// (see [`TescEngine::with_budget`]): the budget is checked per pair
/// on the serial path and per BFS frontier level / source group inside
/// the fused density pass, and an exhausted budget fails the **whole**
/// request with the typed error — no partial outcome list escapes, and
/// caches hold only counts from completed traversals. With the default
/// unlimited budget this is exactly [`run_batch`].
pub fn run_batch_budgeted<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &BatchRequest,
) -> Result<BatchReport, Interrupted> {
    let threads = req.effective_threads();
    let tiny =
        engine.graph().num_nodes() < PARALLEL_MIN_NODES && req.pairs.len() < PARALLEL_MIN_PAIRS;
    let start = Instant::now();
    if threads <= 1 || tiny {
        let mut outcomes = Vec::with_capacity(req.pairs.len());
        for (i, pair) in req.pairs.iter().enumerate() {
            engine.budget().check()?;
            outcomes.push(run_one(engine, req, i, pair));
        }
        // Sticky re-check: a pair interrupted mid-test left an
        // Err(Interrupted) outcome above; this check is then guaranteed
        // to fail, discarding the partial outcome list.
        engine.budget().check()?;
        return Ok(BatchReport {
            outcomes,
            threads: 1,
            wall: start.elapsed(),
        });
    }
    let seeds: Vec<u64> = (0..req.pairs.len())
        .map(|i| pair_seed(req.seed, i))
        .collect();
    let plan = crate::planner::PairSetPlan::build(engine, &req.pairs, &req.cfg, &seeds, threads);
    engine.budget().check()?;
    let fused = plan.run_density_budgeted(threads, engine.budget())?;
    let outcomes = plan.finish(&fused);
    engine.budget().check()?;
    Ok(BatchReport {
        outcomes,
        threads,
        wall: start.elapsed(),
    })
}

/// The pre-planner parallel executor: scoped worker threads pulling
/// test indices from an atomic work queue, each running the full
/// per-pair engine path ([`TescEngine::test`]) independently (dynamic
/// load balancing: event pairs with bigger vicinities cost more, so
/// static chunking would straggle).
///
/// Bit-identical to [`run_batch`] and [`run_batch_serial`]; kept as
/// the reference executor the planner is benchmarked against (the
/// `rank_events` bench's `perpair` rows) and for workloads whose pairs
/// share no events, where fusing has nothing to share.
pub fn run_batch_per_pair<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &BatchRequest,
) -> BatchReport {
    let threads = req.effective_threads();
    let tiny =
        engine.graph().num_nodes() < PARALLEL_MIN_NODES && req.pairs.len() < PARALLEL_MIN_PAIRS;
    if threads <= 1 || tiny {
        return run_batch_serial(engine, req);
    }
    let start = Instant::now();
    let n = req.pairs.len();
    let mut slots: Vec<Option<PairOutcome>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push(run_one(engine, req, i, &req.pairs[i]));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            for outcome in worker.join().expect("batch worker panicked") {
                let slot = outcome.index;
                slots[slot] = Some(outcome);
            }
        }
    });
    BatchReport {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every index processed exactly once"))
            .collect(),
        threads,
        wall: start.elapsed(),
    }
}

fn run_one<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &BatchRequest,
    i: usize,
    pair: &EventPair,
) -> PairOutcome {
    let mut rng = StdRng::seed_from_u64(pair_seed(req.seed, i));
    PairOutcome {
        index: i,
        label: pair.label.clone(),
        result: engine.test(&pair.a, &pair.b, &req.cfg, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TescConfig;
    use rand::Rng;
    use tesc_graph::generators::{barabasi_albert, grid};
    use tesc_stats::Tail;

    fn pairs_on(n_pairs: usize, seed: u64, num_nodes: usize) -> Vec<EventPair> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_pairs)
            .map(|i| {
                let base = rng.gen_range(0..num_nodes as NodeId / 2);
                let a: Vec<NodeId> = (base..base + 30).collect();
                let b: Vec<NodeId> = (base + 15..base + 45).collect();
                EventPair::new(format!("pair{i}"), a, b)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let g = barabasi_albert(2000, 3, &mut StdRng::seed_from_u64(1));
        let engine = TescEngine::new(&g);
        let req = BatchRequest::new(TescConfig::new(1).with_sample_size(120))
            .with_seed(99)
            .with_pairs(pairs_on(12, 2, 2000));
        let serial = run_batch_serial(&engine, &req);
        for threads in [2, 4, 8] {
            // Both executors — the fused planner path and the legacy
            // per-pair queue — must reproduce the serial bits.
            for (name, executor) in [
                (
                    "planner",
                    run_batch as fn(&TescEngine<'_>, &BatchRequest) -> BatchReport,
                ),
                ("per-pair", run_batch_per_pair),
            ] {
                let par = executor(&engine, &req.clone().with_threads(threads));
                assert_eq!(par.threads, threads.min(12));
                for (s, p) in serial.outcomes.iter().zip(&par.outcomes) {
                    assert_eq!(s, p, "{name} at {threads} threads changed an outcome");
                }
            }
        }
    }

    #[test]
    fn batch_matches_direct_engine_calls_with_derived_seeds() {
        let g = grid(25, 25);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1)
            .with_sample_size(60)
            .with_tail(Tail::Upper);
        let pairs = pairs_on(5, 3, 625);
        let req = BatchRequest::new(cfg)
            .with_seed(1234)
            .with_threads(3)
            .with_pairs(pairs.clone());
        let report = run_batch(&engine, &req);
        for (i, pair) in pairs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(pair_seed(1234, i));
            let direct = engine.test(&pair.a, &pair.b, &cfg, &mut rng);
            assert_eq!(report.outcomes[i].result, direct, "pair {i}");
        }
    }

    #[test]
    fn cached_parallel_batch_matches_uncached_serial() {
        let g = barabasi_albert(1500, 3, &mut StdRng::seed_from_u64(8));
        // Pairs sharing event `a` — the cache's target workload.
        let a: Vec<NodeId> = (0..40).collect();
        let pairs: Vec<EventPair> = (0..6)
            .map(|i| {
                let b: Vec<NodeId> =
                    (100 * (i as NodeId + 1)..100 * (i as NodeId + 1) + 40).collect();
                EventPair::new(format!("a×b{i}"), a.clone(), b)
            })
            .collect();
        let req = BatchRequest::new(TescConfig::new(1).with_sample_size(100))
            .with_seed(21)
            .with_pairs(pairs);
        let plain = TescEngine::new(&g);
        let baseline = run_batch_serial(&plain, &req);
        let cache = std::sync::Arc::new(crate::cache::DensityCache::for_graph(&g));
        let cached = TescEngine::new(&g).with_density_cache(cache.clone());
        for threads in [1, 4] {
            let report = run_batch(&cached, &req.clone().with_threads(threads));
            for (b, c) in baseline.outcomes.iter().zip(&report.outcomes) {
                assert_eq!(b, c, "threads = {threads}");
            }
        }
        assert!(cache.hits() > 0, "shared event must produce hits");
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let g = grid(8, 8);
        let engine = TescEngine::new(&g);
        let req = BatchRequest::new(TescConfig::new(1).with_sample_size(20))
            .with_threads(2)
            .with_pair(EventPair::new("ok", vec![0, 1, 2], vec![8, 9]))
            .with_pair(EventPair::new("empty", vec![], vec![]))
            .with_pair(EventPair::new("ok2", vec![3, 4], vec![11, 12]));
        let report = run_batch(&engine, &req);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.outcomes[0].result.is_ok());
        assert_eq!(
            report.outcomes[1].result,
            Err(TescError::NoEventNodes),
            "empty pair fails in place"
        );
        assert!(report.outcomes[2].result.is_ok());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn pair_seed_is_order_free_and_spreads() {
        let a: Vec<u64> = (0..64).map(|i| pair_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).rev().map(|i| pair_seed(42, i)).collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "no colliding per-test seeds");
        assert_ne!(pair_seed(42, 0), pair_seed(43, 0));
    }

    #[test]
    fn report_summary_counts() {
        let g = grid(10, 10);
        let engine = TescEngine::new(&g);
        let req = BatchRequest::new(TescConfig::new(1).with_sample_size(30))
            .with_pair(EventPair::new("x", vec![0, 1], vec![10, 11]))
            .with_pair(EventPair::new("broken", vec![], vec![]));
        let report = run_batch(&engine, &req);
        let s = report.summary();
        assert!(s.contains("2 pairs"), "{s}");
        assert!(s.contains("1 failed"), "{s}");
    }

    #[test]
    fn tiny_graph_short_list_runs_serial_but_long_lists_fan_out() {
        let g = grid(10, 10); // 100 nodes < PARALLEL_MIN_NODES
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1).with_sample_size(20);
        let short = BatchRequest::new(cfg)
            .with_threads(4)
            .with_pairs(pairs_on(4, 9, 100));
        assert_eq!(
            run_batch(&engine, &short).threads,
            1,
            "tiny graph + short list stays serial"
        );
        let long =
            BatchRequest::new(cfg)
                .with_threads(4)
                .with_pairs(pairs_on(PARALLEL_MIN_PAIRS, 9, 100));
        let report = run_batch(&engine, &long);
        assert_eq!(report.threads, 4, "pair count overrides the graph gate");
        // And the fan-out is still bit-identical to serial.
        let serial = run_batch_serial(&engine, &long);
        assert_eq!(serial.outcomes, report.outcomes);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let req = BatchRequest::new(TescConfig::new(1)).with_pairs(pairs_on(64, 4, 1000));
        assert!(req.effective_threads() >= 1);
        let one = BatchRequest::new(TescConfig::new(1))
            .with_threads(16)
            .with_pair(EventPair::new("solo", vec![0], vec![1]));
        assert_eq!(one.effective_threads(), 1, "never more workers than tests");
    }
}
