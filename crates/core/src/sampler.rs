//! Reference-node sampling — Sec. 4 of the paper.
//!
//! The test needs `n` reference nodes drawn uniformly from
//! `V^h_{a∪b}`, but only `V_{a∪b}` is in hand. Four strategies:
//!
//! * [`batch_bfs_sample`] — materialize `V^h_{a∪b}` with the
//!   multi-source Batch BFS of Algorithm 1 (`O(|V^h_{a∪b}| +
//!   |E^h_{a∪b}|)`), then subsample uniformly.
//! * [`rejection_sample`] — Procedure *RejectSamp*: provably uniform
//!   (Prop. 1) without enumeration, but pays `2n/p_succ` BFS searches
//!   where `p_succ = N/N_sum` collapses under heavy vicinity overlap.
//! * [`importance_sample`] — Algorithm 2: keep every draw, weight by
//!   inclusion probability, estimate τ with the consistent `t̃` of
//!   Eq. 8 (Thm. 1). The `batch_size > 1` variant (Sec. 5.2.2) draws
//!   several reference nodes per peeked vicinity, trading accuracy for
//!   fewer BFS searches.
//! * [`whole_graph_sample`] — Algorithm 3: uniform over `V`, keep the
//!   hits; `E(n_f) = n|V|/N − n` wasted eligibility checks, worthwhile
//!   only when `V^h_{a∪b}` covers most of the graph.

use rand::Rng;
use std::collections::HashMap;
use tesc_events::NodeMask;
use tesc_graph::bfs::BfsScratch;
use tesc_graph::{Adjacency, NodeId, VicinityIndex};

/// Which sampling strategy the engine should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Batch BFS enumeration (Algorithm 1) + uniform subsample.
    BatchBfs,
    /// Rejection sampling (Procedure RejectSamp).
    Rejection,
    /// Importance sampling (Algorithm 2); `batch_size = 1` is the
    /// plain algorithm, larger values are the Sec. 5.2.2 batched
    /// variant (the paper uses 3 for `h = 2` and 6 for `h = 3`).
    Importance {
        /// Reference nodes drawn per peeked vicinity.
        batch_size: usize,
    },
    /// Whole-graph sampling (Algorithm 3).
    WholeGraph,
}

impl std::fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerKind::BatchBfs => write!(f, "Batch_BFS"),
            SamplerKind::Rejection => write!(f, "RejectSamp"),
            SamplerKind::Importance { batch_size } => {
                write!(f, "Importance(k={batch_size})")
            }
            SamplerKind::WholeGraph => write!(f, "Whole graph"),
        }
    }
}

/// A uniform (unweighted) reference-node sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformSample {
    /// The sampled reference nodes (distinct).
    pub nodes: Vec<NodeId>,
    /// `N = |V^h_{a∪b}|` when the strategy enumerated it (Batch BFS).
    pub population_size: Option<usize>,
    /// Total candidate draws (diagnostics; for Whole-graph sampling the
    /// failed draws are the `n_f` of Sec. 4.4).
    pub draws: usize,
}

/// A weighted (importance) reference-node sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedSample {
    /// Distinct sampled reference nodes, in first-draw order.
    pub nodes: Vec<NodeId>,
    /// `w_i` — how many times each node was drawn (`n' = Σ w_i`).
    pub multiplicities: Vec<u32>,
    /// Total draws `n'`.
    pub total_draws: usize,
}

/// Uniformly choose `k` distinct elements from `pool` (partial
/// Fisher–Yates; order of the result is random).
fn choose_distinct(pool: &mut [NodeId], k: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    debug_assert!(k <= pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool[..k].to_vec()
}

/// Batch BFS sampling: enumerate `V^h_{a∪b}` (Algorithm 1) and draw a
/// uniform subsample of size `min(n, N)`.
pub fn batch_bfs_sample<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    event_nodes: &[NodeId],
    h: u32,
    n: usize,
    rng: &mut impl Rng,
) -> UniformSample {
    let mut population = Vec::new();
    scratch.h_vicinity_into(g, event_nodes, h, &mut population);
    let population_size = population.len();
    let k = n.min(population_size);
    let nodes = choose_distinct(&mut population, k, rng);
    UniformSample {
        nodes,
        population_size: Some(population_size),
        draws: k,
    }
}

/// Cumulative-weight table for degree-of-vicinity–proportional event
/// node selection (step 1 of RejectSamp / line 4 of Algorithm 2).
struct WeightTable {
    nodes: Vec<NodeId>,
    cumulative: Vec<u64>,
}

impl WeightTable {
    fn new(event_nodes: &[NodeId], vicinity: &VicinityIndex, h: u32) -> Self {
        let mut cumulative = Vec::with_capacity(event_nodes.len());
        let mut acc = 0u64;
        for &v in event_nodes {
            acc += vicinity.size(v, h) as u64;
            cumulative.push(acc);
        }
        WeightTable {
            nodes: event_nodes.to_vec(),
            cumulative,
        }
    }

    /// `N_sum`.
    fn total(&self) -> u64 {
        *self.cumulative.last().unwrap_or(&0)
    }

    /// Draw an event node with probability `|V^h_v| / N_sum`.
    fn draw(&self, rng: &mut impl Rng) -> NodeId {
        let t = rng.gen_range(0..self.total());
        let idx = self.cumulative.partition_point(|&c| c <= t);
        self.nodes[idx]
    }
}

/// Rejection sampling (Procedure RejectSamp), repeated until `n`
/// distinct reference nodes are collected or `max_draws` candidate
/// draws have been spent (guards against pathological overlap).
///
/// Each accepted node is uniform over `V^h_{a∪b}` (Prop. 1); duplicate
/// accepts are discarded, which turns the with-replacement stream into
/// a uniform distinct sample.
#[allow(clippy::too_many_arguments)]
pub fn rejection_sample<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    event_nodes: &[NodeId],
    union_mask: &NodeMask,
    vicinity: &VicinityIndex,
    h: u32,
    n: usize,
    max_draws: usize,
    rng: &mut impl Rng,
) -> UniformSample {
    let table = WeightTable::new(event_nodes, vicinity, h);
    if table.total() == 0 {
        return UniformSample {
            nodes: Vec::new(),
            population_size: None,
            draws: 0,
        };
    }
    let mut picked = NodeMask::new(g.num_nodes());
    let mut nodes = Vec::with_capacity(n);
    let mut vicinity_buf = Vec::new();
    let mut draws = 0usize;
    while nodes.len() < n && draws < max_draws {
        draws += 1;
        // Step 1: event node, probability ∝ |V^h_v|.
        let v = table.draw(rng);
        // Step 2: uniform node from V^h_v.
        scratch.h_vicinity_into(g, &[v], h, &mut vicinity_buf);
        let u = vicinity_buf[rng.gen_range(0..vicinity_buf.len())];
        // Step 3: c = |V^h_u ∩ V_{a∪b}|.
        let (c, _) = scratch.count_matching(g, u, h, |x| union_mask.contains(x));
        debug_assert!(c >= 1, "u was drawn from an event vicinity");
        // Step 4: accept with probability 1/c.
        if rng.gen_range(0..c as u64) == 0 && picked.insert(u) {
            nodes.push(u);
        }
    }
    UniformSample {
        nodes,
        population_size: None,
        draws,
    }
}

/// Importance sampling (Algorithm 2 + the Sec. 5.2.2 batched variant).
///
/// Draws reference nodes from the *non-uniform* distribution
/// `p(r) ∝ |V^h_r ∩ V_{a∪b}|`, recording multiplicities; the engine
/// reweights with `ω_i = w_i / p(r_i)` and estimates τ via `t̃` (Eq. 8).
/// Stops when `n` distinct nodes are collected or after `max_draws`
/// total draws (whichever first), so small populations terminate.
#[allow(clippy::too_many_arguments)]
pub fn importance_sample<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    event_nodes: &[NodeId],
    vicinity: &VicinityIndex,
    h: u32,
    n: usize,
    batch_size: usize,
    max_draws: usize,
    rng: &mut impl Rng,
) -> WeightedSample {
    assert!(batch_size >= 1, "batch_size must be ≥ 1");
    let table = WeightTable::new(event_nodes, vicinity, h);
    if table.total() == 0 {
        return WeightedSample {
            nodes: Vec::new(),
            multiplicities: Vec::new(),
            total_draws: 0,
        };
    }
    let mut index: HashMap<NodeId, usize> = HashMap::with_capacity(n * 2);
    let mut nodes = Vec::with_capacity(n);
    let mut multiplicities: Vec<u32> = Vec::with_capacity(n);
    let mut vicinity_buf = Vec::new();
    let mut total_draws = 0usize;
    while nodes.len() < n && total_draws < max_draws {
        // Line 4: event node, probability ∝ |V^h_v|.
        let v = table.draw(rng);
        // Line 5: peek at V^h_v, draw `batch_size` reference nodes.
        scratch.h_vicinity_into(g, &[v], h, &mut vicinity_buf);
        for _ in 0..batch_size {
            if nodes.len() >= n || total_draws >= max_draws {
                break;
            }
            total_draws += 1;
            let r = vicinity_buf[rng.gen_range(0..vicinity_buf.len())];
            match index.entry(r) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    multiplicities[*e.get()] += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(nodes.len());
                    nodes.push(r);
                    multiplicities.push(1);
                }
            }
        }
    }
    WeightedSample {
        nodes,
        multiplicities,
        total_draws,
    }
}

/// Whole-graph sampling (Algorithm 3): draw nodes uniformly from `V`
/// without replacement; keep those whose `h`-vicinity contains an
/// event node. Stops after `n` hits or when every node has been tried.
pub fn whole_graph_sample<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    union_mask: &NodeMask,
    h: u32,
    n: usize,
    rng: &mut impl Rng,
) -> UniformSample {
    let num_nodes = g.num_nodes();
    let mut tried = NodeMask::new(num_nodes);
    let mut nodes = Vec::with_capacity(n);
    let mut draws = 0usize;
    while nodes.len() < n && tried.len() < num_nodes {
        let v = rng.gen_range(0..num_nodes as NodeId);
        if !tried.insert(v) {
            continue;
        }
        draws += 1;
        if scratch.vicinity_contains(g, v, h, |x| union_mask.contains(x)) {
            nodes.push(v);
        }
    }
    UniformSample {
        nodes,
        population_size: None,
        draws,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_graph::csr::{from_edges, CsrGraph};
    use tesc_graph::generators::{grid, path};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Enumerate the ground-truth reference population.
    fn reference_population(g: &CsrGraph, events: &[NodeId], h: u32) -> Vec<NodeId> {
        let mut s = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        s.h_vicinity_into(g, events, h, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn batch_bfs_small_population_returns_all() {
        let g = path(10);
        let mut s = BfsScratch::new(10);
        let events = [0u32, 9];
        let sample = batch_bfs_sample(&g, &mut s, &events, 1, 100, &mut rng(1));
        let mut got = sample.nodes.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 8, 9]);
        assert_eq!(sample.population_size, Some(4));
    }

    #[test]
    fn batch_bfs_sample_is_subset_of_population_and_distinct() {
        let g = grid(20, 20);
        let mut s = BfsScratch::new(g.num_nodes());
        let events = [0u32, 150, 399];
        let pop = reference_population(&g, &events, 2);
        let sample = batch_bfs_sample(&g, &mut s, &events, 2, 10, &mut rng(2));
        assert_eq!(sample.nodes.len(), 10);
        let mut sorted = sample.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "sample must be distinct");
        for v in sorted {
            assert!(pop.binary_search(&v).is_ok(), "{v} outside population");
        }
    }

    #[test]
    fn rejection_sample_stays_in_population() {
        let g = grid(15, 15);
        let events = [0u32, 100, 224];
        let h = 2;
        let idx = VicinityIndex::build(&g, h);
        let union_mask = NodeMask::from_nodes(g.num_nodes(), &events);
        let mut s = BfsScratch::new(g.num_nodes());
        let pop = reference_population(&g, &events, h);
        let sample = rejection_sample(
            &g,
            &mut s,
            &events,
            &union_mask,
            &idx,
            h,
            20,
            100_000,
            &mut rng(3),
        );
        assert_eq!(sample.nodes.len(), 20);
        for &v in &sample.nodes {
            assert!(pop.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn rejection_sample_is_uniform_chi_square() {
        // Tiny population, many repetitions: every member's selection
        // frequency should be near-uniform. Single-node "population
        // draws" with n = 1 let us measure the marginal directly.
        let g = path(8);
        let events = [2u32, 5];
        let h = 1;
        let idx = VicinityIndex::build(&g, h);
        let union_mask = NodeMask::from_nodes(8, &events);
        let mut s = BfsScratch::new(8);
        let pop = reference_population(&g, &events, h); // {1,2,3,4,5,6}
        assert_eq!(pop.len(), 6);
        let trials = 6000;
        let mut counts = vec![0usize; 8];
        let mut r = rng(4);
        for _ in 0..trials {
            let sample =
                rejection_sample(&g, &mut s, &events, &union_mask, &idx, h, 1, 10_000, &mut r);
            counts[sample.nodes[0] as usize] += 1;
        }
        let expected = trials as f64 / pop.len() as f64;
        let chi2: f64 = pop
            .iter()
            .map(|&v| {
                let d = counts[v as usize] as f64 - expected;
                d * d / expected
            })
            .sum();
        // 5 degrees of freedom; critical value at α=0.001 is 20.5.
        assert!(chi2 < 20.5, "chi2 = {chi2}, counts = {counts:?}");
        // Nothing outside the population was ever produced.
        assert_eq!(counts[0] + counts[7], 0);
    }

    #[test]
    fn rejection_respects_max_draws() {
        let g = path(8);
        let events = [2u32];
        let idx = VicinityIndex::build(&g, 1);
        let union_mask = NodeMask::from_nodes(8, &events);
        let mut s = BfsScratch::new(8);
        // Ask for more nodes than the population holds; must terminate.
        let sample = rejection_sample(
            &g,
            &mut s,
            &events,
            &union_mask,
            &idx,
            1,
            50,
            500,
            &mut rng(5),
        );
        assert!(sample.nodes.len() <= 3, "population V^1_2 has 3 nodes");
        assert!(sample.draws <= 500);
    }

    #[test]
    fn importance_sample_covers_population_and_counts_draws() {
        let g = path(8);
        let events = [2u32, 5];
        let h = 1;
        let idx = VicinityIndex::build(&g, h);
        let mut s = BfsScratch::new(8);
        let sample = importance_sample(&g, &mut s, &events, &idx, h, 6, 1, 100_000, &mut rng(6));
        assert_eq!(sample.nodes.len(), 6);
        assert_eq!(sample.nodes.len(), sample.multiplicities.len());
        let total: u32 = sample.multiplicities.iter().sum();
        assert_eq!(total as usize, sample.total_draws);
        let pop = reference_population(&g, &events, h);
        for &v in &sample.nodes {
            assert!(pop.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn importance_marginal_is_proportional_to_event_coverage() {
        // On path 0-1-2-3 with events {1,2} and h=1:
        // p(r) ∝ |V^1_r ∩ {1,2}|: node0:1, node1:2, node2:2, node3:1.
        let g = path(4);
        let events = [1u32, 2];
        let idx = VicinityIndex::build(&g, 1);
        let mut s = BfsScratch::new(4);
        let mut counts = [0usize; 4];
        let mut r = rng(7);
        let trials = 12000;
        for _ in 0..trials {
            let sample = importance_sample(&g, &mut s, &events, &idx, 1, 1, 1, 10, &mut r);
            counts[sample.nodes[0] as usize] += 1;
        }
        // Expected proportions 1/6, 2/6, 2/6, 1/6.
        let total = trials as f64;
        for (v, want) in [
            (0usize, 1.0 / 6.0),
            (1, 2.0 / 6.0),
            (2, 2.0 / 6.0),
            (3, 1.0 / 6.0),
        ] {
            let got = counts[v] as f64 / total;
            assert!(
                (got - want).abs() < 0.02,
                "node {v}: frequency {got:.3}, want {want:.3} ({counts:?})"
            );
        }
    }

    #[test]
    fn importance_batching_reduces_vicinity_peeks() {
        // With batch_size = k, consecutive draws share a peeked vicinity;
        // we can't observe BFS count directly here, but the multiplicity
        // structure must still be consistent and the sample complete.
        let g = grid(12, 12);
        let events = [0u32, 77, 143];
        let idx = VicinityIndex::build(&g, 2);
        let mut s = BfsScratch::new(g.num_nodes());
        let sample = importance_sample(&g, &mut s, &events, &idx, 2, 25, 6, 100_000, &mut rng(8));
        assert_eq!(sample.nodes.len(), 25);
        let total: u32 = sample.multiplicities.iter().sum();
        assert_eq!(total as usize, sample.total_draws);
    }

    #[test]
    fn importance_terminates_on_small_population() {
        let g = path(5);
        let events = [2u32];
        let idx = VicinityIndex::build(&g, 1);
        let mut s = BfsScratch::new(5);
        let sample = importance_sample(&g, &mut s, &events, &idx, 1, 50, 1, 1000, &mut rng(9));
        // Population is {1,2,3}; draws cap at 1000 and we keep 3 nodes.
        assert!(sample.nodes.len() <= 3);
        assert_eq!(sample.total_draws, 1000);
    }

    #[test]
    fn whole_graph_keeps_only_eligible() {
        let g = path(10);
        let events = [0u32];
        let union_mask = NodeMask::from_nodes(10, &events);
        let mut s = BfsScratch::new(10);
        let sample = whole_graph_sample(&g, &mut s, &union_mask, 2, 10, &mut rng(10));
        // Eligible: {0,1,2}; sampler exhausts all 10 nodes trying.
        let mut got = sample.nodes.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(sample.draws, 10, "every node examined once");
    }

    #[test]
    fn whole_graph_stops_at_n() {
        let g = grid(10, 10);
        let events: Vec<NodeId> = (0..100).collect(); // everything eligible
        let union_mask = NodeMask::from_nodes(100, &events);
        let mut s = BfsScratch::new(100);
        let sample = whole_graph_sample(&g, &mut s, &union_mask, 1, 15, &mut rng(11));
        assert_eq!(sample.nodes.len(), 15);
        assert_eq!(sample.draws, 15, "every draw is a hit here");
    }

    #[test]
    fn samplers_are_seed_reproducible() {
        let g = grid(10, 10);
        let events = [5u32, 50, 95];
        let idx = VicinityIndex::build(&g, 2);
        let union_mask = NodeMask::from_nodes(100, &events);
        let mut s = BfsScratch::new(100);
        let a = batch_bfs_sample(&g, &mut s, &events, 2, 12, &mut rng(12));
        let b = batch_bfs_sample(&g, &mut s, &events, 2, 12, &mut rng(12));
        assert_eq!(a, b);
        let c = importance_sample(&g, &mut s, &events, &idx, 2, 12, 3, 10_000, &mut rng(13));
        let d = importance_sample(&g, &mut s, &events, &idx, 2, 12, 3, 10_000, &mut rng(13));
        assert_eq!(c, d);
        let e = whole_graph_sample(&g, &mut s, &union_mask, 2, 12, &mut rng(14));
        let f = whole_graph_sample(&g, &mut s, &union_mask, 2, 12, &mut rng(14));
        assert_eq!(e, f);
    }

    #[test]
    fn empty_event_set_yields_empty_samples() {
        let g = path(5);
        let idx = VicinityIndex::build(&g, 1);
        let union_mask = NodeMask::new(5);
        let mut s = BfsScratch::new(5);
        let a = batch_bfs_sample(&g, &mut s, &[], 1, 5, &mut rng(15));
        assert!(a.nodes.is_empty());
        let b = rejection_sample(&g, &mut s, &[], &union_mask, &idx, 1, 5, 100, &mut rng(15));
        assert!(b.nodes.is_empty());
        let c = importance_sample(&g, &mut s, &[], &idx, 1, 5, 1, 100, &mut rng(15));
        assert!(c.nodes.is_empty());
        let d = whole_graph_sample(&g, &mut s, &union_mask, 1, 5, &mut rng(15));
        assert!(d.nodes.is_empty());
        assert_eq!(d.draws, 5, "whole-graph still examines (and rejects) nodes");
    }

    #[test]
    fn batch_bfs_marginal_uniform() {
        // Population {1..=6} on path(8) as before; Batch BFS with n=1.
        let g = from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let events = [2u32, 5];
        let mut s = BfsScratch::new(8);
        let mut counts = vec![0usize; 8];
        let mut r = rng(16);
        let trials = 6000;
        for _ in 0..trials {
            let sample = batch_bfs_sample(&g, &mut s, &events, 1, 1, &mut r);
            counts[sample.nodes[0] as usize] += 1;
        }
        let expected = trials as f64 / 6.0;
        for v in 1..=6 {
            let d = (counts[v] as f64 - expected).abs() / expected;
            assert!(d < 0.15, "node {v} freq off by {d:.2} ({counts:?})");
        }
    }
}
