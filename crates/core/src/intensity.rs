//! Event **intensity** — the paper's second future-work extension
//! (Sec. 6): "consider event intensity on nodes, e.g. the frequency by
//! which an author used a keyword".
//!
//! An [`Intensities`] assigns every occurrence node a positive weight.
//! The density of Eq. 2 generalizes from the occurrence *count* to the
//! intensity *mass* in the vicinity:
//!
//! ```text
//! s^h_a(r) = Σ_{v ∈ V_a ∩ V^h_r} w_a(v)  /  |V^h_r| .
//! ```
//!
//! Everything else — reference-node eligibility, the samplers, the
//! Kendall/Spearman machinery, the tie-corrected significance — is
//! unchanged: reference nodes are still drawn uniformly from
//! `V^h_{a∪b}` (eligibility is presence-based, so the importance
//! sampler's inclusion probabilities stay valid), and the statistic
//! still compares density ranks.

use tesc_graph::bfs::BfsScratch;
use tesc_graph::Adjacency;
use tesc_graph::NodeId;

/// Per-node event intensities: a sparse non-negative weight vector
/// over node ids. Nodes with weight 0 are not occurrences.
#[derive(Debug, Clone, PartialEq)]
pub struct Intensities {
    /// Dense weight array, `len == num_nodes`.
    values: Vec<f64>,
    /// Sorted occurrence nodes (positive weight).
    support: Vec<NodeId>,
}

impl Intensities {
    /// Build from `(node, weight)` pairs over a graph with `num_nodes`
    /// nodes. Duplicate nodes accumulate their weights.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes, or non-finite / negative weights.
    pub fn from_pairs(num_nodes: usize, pairs: &[(NodeId, f64)]) -> Self {
        let mut values = vec![0.0; num_nodes];
        for &(v, w) in pairs {
            assert!(
                (v as usize) < num_nodes,
                "node {v} out of range for {num_nodes} nodes"
            );
            assert!(
                w.is_finite() && w >= 0.0,
                "intensity must be finite and ≥ 0, got {w}"
            );
            values[v as usize] += w;
        }
        let support: Vec<NodeId> = (0..num_nodes as NodeId)
            .filter(|&v| values[v as usize] > 0.0)
            .collect();
        Intensities { values, support }
    }

    /// Unit intensities on the given occurrence nodes — reduces the
    /// weighted density to the paper's original count density.
    pub fn uniform(num_nodes: usize, nodes: &[NodeId]) -> Self {
        let pairs: Vec<(NodeId, f64)> = {
            let mut sorted = nodes.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.into_iter().map(|v| (v, 1.0)).collect()
        };
        Self::from_pairs(num_nodes, &pairs)
    }

    /// The weight of a node (0 for non-occurrences).
    #[inline]
    pub fn weight(&self, v: NodeId) -> f64 {
        self.values[v as usize]
    }

    /// Sorted occurrence nodes (positive weight).
    #[inline]
    pub fn support(&self) -> &[NodeId] {
        &self.support
    }

    /// Number of ids covered.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.values.len()
    }

    /// Total intensity mass.
    pub fn total(&self) -> f64 {
        self.support.iter().map(|&v| self.values[v as usize]).sum()
    }
}

/// Intensity-weighted per-reference-node measurements, gathered in a
/// single `h`-hop BFS (the weighted analogue of
/// [`crate::density::DensityCounts`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityCounts {
    /// `|V^h_r|`.
    pub vicinity_size: usize,
    /// `Σ w_a(v)` over the vicinity.
    pub mass_a: f64,
    /// `Σ w_b(v)` over the vicinity.
    pub mass_b: f64,
    /// `|V_{a∪b} ∩ V^h_r|` (presence-based, for sampler weights).
    pub count_union: usize,
}

impl IntensityCounts {
    /// Weighted density of `a`.
    #[inline]
    pub fn density_a(&self) -> f64 {
        self.mass_a / self.vicinity_size as f64
    }

    /// Weighted density of `b`.
    #[inline]
    pub fn density_b(&self) -> f64 {
        self.mass_b / self.vicinity_size as f64
    }
}

/// Gather [`IntensityCounts`] for reference node `r` with one BFS.
pub fn intensity_counts<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    r: NodeId,
    h: u32,
    a: &Intensities,
    b: &Intensities,
) -> IntensityCounts {
    let mut mass_a = 0.0;
    let mut mass_b = 0.0;
    let mut count_union = 0usize;
    let vicinity_size = scratch.visit_h_vicinity(g, &[r], h, |v, _| {
        let wa = a.weight(v);
        let wb = b.weight(v);
        mass_a += wa;
        mass_b += wb;
        count_union += (wa > 0.0 || wb > 0.0) as usize;
    });
    IntensityCounts {
        vicinity_size,
        mass_a,
        mass_b,
        count_union,
    }
}

/// Weighted density vectors for a reference-node sample.
pub fn intensity_density_vectors<G: Adjacency>(
    g: &G,
    scratch: &mut BfsScratch,
    refs: &[NodeId],
    h: u32,
    a: &Intensities,
    b: &Intensities,
) -> (Vec<f64>, Vec<f64>) {
    let mut sa = Vec::with_capacity(refs.len());
    let mut sb = Vec::with_capacity(refs.len());
    for &r in refs {
        let c = intensity_counts(g, scratch, r, h, a, b);
        sa.push(c.density_a());
        sb.push(c.density_b());
    }
    (sa, sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::density_counts;
    use tesc_events::NodeMask;
    use tesc_graph::generators::path;

    #[test]
    fn from_pairs_accumulates_and_supports() {
        let i = Intensities::from_pairs(5, &[(1, 2.0), (3, 1.0), (1, 0.5), (4, 0.0)]);
        assert_eq!(i.weight(1), 2.5);
        assert_eq!(i.weight(3), 1.0);
        assert_eq!(i.weight(0), 0.0);
        assert_eq!(
            i.support(),
            &[1, 3],
            "zero-weight nodes are not occurrences"
        );
        assert!((i.total() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_reduces_to_count_density() {
        let g = path(6);
        let nodes_a = [0u32, 1];
        let nodes_b = [4u32];
        let ia = Intensities::uniform(6, &nodes_a);
        let ib = Intensities::uniform(6, &nodes_b);
        let ma = NodeMask::from_nodes(6, &nodes_a);
        let mb = NodeMask::from_nodes(6, &nodes_b);
        let mut s = BfsScratch::new(6);
        for r in 0..6u32 {
            for h in [0u32, 1, 2] {
                let w = intensity_counts(&g, &mut s, r, h, &ia, &ib);
                let c = density_counts(&g, &mut s, r, h, &ma, &mb);
                assert_eq!(w.vicinity_size, c.vicinity_size);
                assert!((w.density_a() - c.density_a()).abs() < 1e-12);
                assert!((w.density_b() - c.density_b()).abs() < 1e-12);
                assert_eq!(w.count_union, c.count_union);
            }
        }
    }

    #[test]
    fn intensity_shifts_density_mass() {
        // Same occurrence node, ten times the intensity: density ×10.
        let g = path(4);
        let light = Intensities::from_pairs(4, &[(1, 1.0)]);
        let heavy = Intensities::from_pairs(4, &[(1, 10.0)]);
        let mut s = BfsScratch::new(4);
        let wl = intensity_counts(&g, &mut s, 0, 1, &light, &light);
        let wh = intensity_counts(&g, &mut s, 0, 1, &heavy, &heavy);
        assert!((wh.density_a() - 10.0 * wl.density_a()).abs() < 1e-12);
        assert_eq!(
            wl.count_union, wh.count_union,
            "presence is intensity-blind"
        );
    }

    #[test]
    fn density_vectors_align() {
        let g = path(5);
        let ia = Intensities::from_pairs(5, &[(0, 3.0)]);
        let ib = Intensities::from_pairs(5, &[(4, 2.0)]);
        let mut s = BfsScratch::new(5);
        let (sa, sb) = intensity_density_vectors(&g, &mut s, &[0, 2, 4], 1, &ia, &ib);
        assert_eq!(sa.len(), 3);
        assert!((sa[0] - 3.0 / 2.0).abs() < 1e-12); // V^1_0 = {0,1}
        assert_eq!(sb[0], 0.0);
        assert_eq!(sa[1], 0.0);
        assert!((sb[2] - 2.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and ≥ 0")]
    fn negative_weight_rejected() {
        let _ = Intensities::from_pairs(3, &[(0, -1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Intensities::from_pairs(3, &[(5, 1.0)]);
    }
}
