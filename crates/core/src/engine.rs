//! The end-to-end TESC significance test (Sec. 3 of the paper).
//!
//! [`TescEngine`] owns a thread-safe pool of BFS scratches for one
//! graph and runs the full pipeline: reference-node sampling → density
//! computation → Kendall τ → z-score → verdict.
//!
//! Every test method takes `&self`: the engine's only mutable state is
//! the [`ScratchPool`], so one engine can serve any number of
//! concurrent tests — that is the foundation of the parallel batch
//! engine in [`crate::batch`]. Within a single test, the
//! per-reference-node density loop can itself be fanned out over
//! worker threads via [`TescEngine::with_density_threads`]; the result
//! is bit-identical either way because density BFS consumes no
//! randomness.

use crate::cache::{DensityCache, EventKey};
use crate::density::{translate_mask, DensityCounts, GroupKernelPlan, KernelPlan};
use crate::sampler::{
    batch_bfs_sample, importance_sample, rejection_sample, whole_graph_sample, SamplerKind,
    UniformSample,
};
use rand::Rng;
use std::sync::Arc;
use tesc_events::{store::merge_union, NodeMask};
use tesc_graph::bfs::{BfsKernel, BfsScratch};
use tesc_graph::csr::CsrGraph;
use tesc_graph::relabel::RelabeledGraph;
use tesc_graph::Adjacency;
use tesc_graph::{Budget, Interrupted, NodeId, ScratchPool, VicinityIndex};
use tesc_stats::kendall::{
    kendall_tau, var_s_tie_corrected, weighted_tau, KendallMethod, KendallSummary,
};
use tesc_stats::rank::nontrivial_tie_group_sizes;
use tesc_stats::spearman::spearman_rho;
use tesc_stats::{SignificanceLevel, Tail, TestOutcome};

/// Which rank-correlation statistic the test aggregates concordance
/// with. The paper uses Kendall's τ and notes Spearman's ρ as the
/// alternative (Sec. 8); ρ is offered for cross-checking verdicts but
/// does not support the importance sampler (the weighted `t̃`
/// estimator of Eq. 8 is τ-specific).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Statistic {
    /// Kendall's τ (Eq. 4) with tie-corrected variance (Eq. 6).
    #[default]
    KendallTau,
    /// Spearman's ρ of the density midranks, `Var(ρ) = 1/(n−1)`.
    SpearmanRho,
}

/// Configuration of one TESC test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TescConfig {
    /// Vicinity level `h` (the paper studies `h = 1, 2, 3`).
    pub h: u32,
    /// Number of reference nodes to sample (`n`); the paper uses 900
    /// and notes `Var(t) ≤ 2(1−τ²)/n` regardless of `N`.
    pub sample_size: usize,
    /// Significance level `α` of the test.
    pub alpha: SignificanceLevel,
    /// Tail convention. The paper's evaluation uses one-tailed tests
    /// ([`Tail::Upper`] for positive, [`Tail::Lower`] for negative).
    pub tail: Tail,
    /// Reference-node sampling strategy.
    pub sampler: SamplerKind,
    /// Rank-correlation statistic.
    pub statistic: Statistic,
    /// Draw budget for rejection/importance sampling, as a multiple of
    /// `sample_size` (termination guard for tiny populations).
    pub max_draw_factor: usize,
}

impl TescConfig {
    /// Defaults from the paper: `n = 900`, `α = 0.05`, two-sided,
    /// Batch BFS sampling.
    pub fn new(h: u32) -> Self {
        TescConfig {
            h,
            sample_size: 900,
            alpha: SignificanceLevel::FIVE_PERCENT,
            tail: Tail::TwoSided,
            sampler: SamplerKind::BatchBfs,
            statistic: Statistic::KendallTau,
            max_draw_factor: 64,
        }
    }

    /// Set the reference-node sample size `n`.
    pub fn with_sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the significance level.
    pub fn with_alpha(mut self, alpha: SignificanceLevel) -> Self {
        self.alpha = alpha;
        self
    }

    /// Set the tail convention.
    pub fn with_tail(mut self, tail: Tail) -> Self {
        self.tail = tail;
        self
    }

    /// Set the sampling strategy.
    pub fn with_sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Set the rank-correlation statistic.
    pub fn with_statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = statistic;
        self
    }
}

/// Failure modes of a TESC test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TescError {
    /// Both events have no occurrences — there are no reference nodes.
    NoEventNodes,
    /// Fewer than 3 reference nodes could be collected (Eq. 6 needs
    /// `n ≥ 3`; the paper recommends `n > 30`).
    TooFewReferenceNodes {
        /// Number of reference nodes actually collected.
        found: usize,
    },
    /// The chosen sampler needs a [`VicinityIndex`] covering level `h`,
    /// but none (or a too-shallow one) was supplied.
    MissingVicinityIndex {
        /// The level the test needed.
        needed_h: u32,
    },
    /// The importance sampler's weighted estimator (Eq. 8) is specific
    /// to Kendall's τ; it cannot be combined with Spearman's ρ.
    StatisticUnsupportedBySampler,
    /// The engine's [`Budget`] exhausted (deadline passed or the
    /// request was cancelled) before the test completed. No partial
    /// state was published — caches and snapshots are exactly as they
    /// would be had the interrupted work never started (completed BFS
    /// counts may have warmed the cache, which is semantically
    /// invisible).
    Interrupted(Interrupted),
}

impl From<Interrupted> for TescError {
    fn from(i: Interrupted) -> Self {
        TescError::Interrupted(i)
    }
}

impl std::fmt::Display for TescError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TescError::NoEventNodes => write!(f, "both events are empty; no reference nodes"),
            TescError::TooFewReferenceNodes { found } => {
                write!(f, "only {found} reference nodes available; need at least 3")
            }
            TescError::MissingVicinityIndex { needed_h } => write!(
                f,
                "sampler requires a VicinityIndex covering h = {needed_h}; \
                 construct the engine with TescEngine::with_vicinity_index"
            ),
            TescError::StatisticUnsupportedBySampler => write!(
                f,
                "importance sampling's weighted estimator is Kendall-specific; \
                 use Statistic::KendallTau or a uniform sampler"
            ),
            TescError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for TescError {}

/// Result of a TESC test.
#[derive(Debug, Clone, PartialEq)]
pub struct TescResult {
    /// Statistic, z-score, p-value and verdict.
    pub outcome: TestOutcome,
    /// Number of (distinct) reference nodes the statistic used.
    pub n_refs: usize,
    /// `N = |V^h_{a∪b}|` when the sampler enumerated it (Batch BFS).
    pub population_size: Option<usize>,
    /// Candidate draws spent by the sampler (diagnostics).
    pub draws: usize,
    /// The full Kendall summary for uniform samplers (`None` for
    /// importance sampling, whose statistic is the weighted `t̃`).
    pub kendall: Option<KendallSummary>,
}

impl TescResult {
    /// The correlation estimate (τ for uniform samplers, `t̃` for
    /// importance sampling).
    #[inline]
    pub fn statistic(&self) -> f64 {
        self.outcome.statistic
    }

    /// The z-score (Eq. 7).
    #[inline]
    pub fn z(&self) -> f64 {
        self.outcome.z
    }
}

/// Borrowed or shared ownership of a [`VicinityIndex`] — lets one
/// engine type serve both the classic "caller owns everything" flow
/// and the snapshot flow, where the index lives in an `Arc` inside a
/// [`crate::context::Snapshot`].
enum VicinityRef<'a> {
    Borrowed(&'a VicinityIndex),
    Owned(Arc<VicinityIndex>),
}

impl VicinityRef<'_> {
    #[inline]
    fn get(&self) -> &VicinityIndex {
        match self {
            VicinityRef::Borrowed(v) => v,
            VicinityRef::Owned(v) => v,
        }
    }
}

/// The TESC test engine for one graph.
///
/// Holds a [`ScratchPool`] instead of a single scratch, so every test
/// method takes `&self` and the engine is `Sync`: share one engine
/// across threads (see [`crate::batch`]) or call it from a loop — the
/// pool grows to the number of concurrent tests and is then reused.
/// Rejection and importance sampling additionally need the offline
/// vicinity-size index (Sec. 4.2) — supply it via
/// [`TescEngine::with_vicinity_index`] (borrowed),
/// [`TescEngine::with_vicinity_arc`] (shared, the snapshot flow) or
/// build it in place with [`TescEngine::build_vicinity`].
///
/// Optionally the engine carries a cross-pair [`DensityCache`]
/// ([`TescEngine::with_density_cache`]): uniform-sampler density
/// phases then memoize per-`(event, node, h)` vicinity counts so batch
/// runs over pair lists sharing an event do the shared BFS work once,
/// with bit-identical results.
pub struct TescEngine<'a, G = CsrGraph> {
    graph: &'a G,
    vicinity: Option<VicinityRef<'a>>,
    pool: ScratchPool,
    density_threads: usize,
    cache: Option<Arc<DensityCache>>,
    kernel: BfsKernel,
    relabel: Option<Arc<RelabeledGraph<G>>>,
    group_size: usize,
    budget: Budget,
}

impl<'a, G: Adjacency> TescEngine<'a, G> {
    /// Engine without a vicinity index (Batch BFS and whole-graph
    /// sampling only).
    pub fn new(graph: &'a G) -> Self {
        TescEngine {
            graph,
            vicinity: None,
            pool: ScratchPool::for_graph(graph),
            density_threads: 1,
            cache: None,
            kernel: BfsKernel::Auto,
            relabel: None,
            group_size: tesc_graph::SOURCE_GROUP_SIZE,
            budget: Budget::unlimited(),
        }
    }

    /// Attach a cooperative [`Budget`] (deadline and/or cancel flag):
    /// every test run by this engine checks it at bounded intervals —
    /// per BFS frontier level, per source group, per reference node —
    /// and fails with [`TescError::Interrupted`] once it exhausts,
    /// publishing no partial state. The default is
    /// [`Budget::unlimited`], whose checks are near-free.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The engine's budget (unlimited unless set via
    /// [`TescEngine::with_budget`]).
    #[inline]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Engine with the precomputed `|V^h_v|` index, enabling rejection
    /// and importance sampling.
    pub fn with_vicinity_index(graph: &'a G, vicinity: &'a VicinityIndex) -> Self {
        TescEngine {
            vicinity: Some(VicinityRef::Borrowed(vicinity)),
            ..Self::new(graph)
        }
    }

    /// Engine sharing ownership of an `Arc`-held index — the snapshot
    /// flow ([`crate::context::Snapshot::engine`]), where graph and
    /// index live in reference-counted cells of a versioned context.
    pub fn with_vicinity_arc(graph: &'a G, vicinity: Arc<VicinityIndex>) -> Self {
        TescEngine {
            vicinity: Some(VicinityRef::Owned(vicinity)),
            ..Self::new(graph)
        }
    }

    /// Build the `|V^h_v|` index for levels `1..=max_level` in place,
    /// honoring [`TescEngine::with_density_threads`] by routing
    /// through [`VicinityIndex::build_parallel`] — call
    /// `with_density_threads` first to parallelize the offline sweep:
    ///
    /// ```
    /// use tesc::TescEngine;
    /// use tesc_graph::generators::grid;
    ///
    /// let g = grid(40, 40);
    /// let engine = TescEngine::new(&g).with_density_threads(4).build_vicinity(2);
    /// ```
    pub fn build_vicinity(mut self, max_level: u32) -> Self {
        self.vicinity = Some(VicinityRef::Owned(Arc::new(VicinityIndex::build_parallel(
            self.graph,
            max_level,
            self.density_threads,
        ))));
        self
    }

    /// Attach a cross-pair [`DensityCache`]. Uniform-sampler density
    /// phases consult it; importance-sampling and intensity phases
    /// bypass it (their per-node quantities are pair-specific).
    /// Results are bit-identical with or without a cache.
    ///
    /// # Panics
    ///
    /// Panics if the cache was created for a structurally different
    /// graph (compared by [`Adjacency::fingerprint`]) — memoized counts
    /// are only valid for the graph they were measured on (the
    /// versioned [`crate::context::TescContext`] makes a fresh cache
    /// whenever the graph changes for exactly this reason).
    pub fn with_density_cache(mut self, cache: Arc<DensityCache>) -> Self {
        assert!(
            cache.matches_graph(self.graph),
            "density cache pinned to a different graph shape"
        );
        self.cache = Some(cache);
        self
    }

    /// The attached cross-pair cache, if any.
    #[inline]
    pub fn density_cache(&self) -> Option<&Arc<DensityCache>> {
        self.cache.as_ref()
    }

    /// Choose the density BFS kernel: [`BfsKernel::Auto`] (default)
    /// picks per graph/level with the expected vicinity-density
    /// heuristic; `Scalar`/`Bitset` force one (for tests and benches).
    /// Every configuration produces bit-identical results — see
    /// `docs/PERFORMANCE.md` for when each wins.
    pub fn with_density_kernel(mut self, kernel: BfsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured density BFS kernel policy.
    #[inline]
    pub fn density_kernel(&self) -> BfsKernel {
        self.kernel
    }

    /// Cap the sources fused into one multi-source density traversal
    /// (default [`tesc_graph::SOURCE_GROUP_SIZE`] = 64, the full lane
    /// word). Only meaningful when grouping is engaged
    /// ([`BfsKernel::Multi`], or `Auto` on big-enough worksets);
    /// intended for bench ablations — a deliberately half-occupied
    /// word isolates the amortization effect but never wins (see the
    /// constant's docs). Results are bit-identical at every size.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ size ≤ 64`.
    pub fn with_source_group_size(mut self, size: usize) -> Self {
        assert!(
            (1..=tesc_graph::MAX_GROUP_SOURCES).contains(&size),
            "source group size must be in 1..={}, got {size}",
            tesc_graph::MAX_GROUP_SOURCES
        );
        self.group_size = size;
        self
    }

    /// The configured multi-source group size.
    #[inline]
    pub fn source_group_size(&self) -> usize {
        self.group_size
    }

    /// Run density BFS on a locality-relabeled twin of the graph
    /// (degree-descending + BFS-order ids, built here): vicinities
    /// occupy near-contiguous id ranges, so the bitset kernel's bitmap
    /// words and adjacency reads stay hot. Sampling, event sets,
    /// caches and every reported node id remain in **original** id
    /// space — the permutation is applied (and inverted) only at the
    /// density-BFS boundary, so all outputs are bit-identical to the
    /// unrelabeled engine (asserted in `tests/kernels.rs`).
    ///
    /// Intensity-weighted tests ([`TescEngine::test_intensity`])
    /// deliberately bypass the relabeled substrate: their densities
    /// sum `f64` masses in BFS visit order, which a permutation would
    /// reorder — integer presence counts are order-free, float sums
    /// are not.
    pub fn with_relabeling(mut self, on: bool) -> Self {
        self.relabel = on.then(|| Arc::new(RelabeledGraph::build(self.graph)));
        self
    }

    /// Share a prebuilt relabeled substrate (the snapshot flow — one
    /// build per graph version, shared by every engine).
    ///
    /// # Panics
    ///
    /// Panics if the substrate was built from a structurally different
    /// graph (compared by [`Adjacency::fingerprint`]).
    pub fn with_relabeled_arc(mut self, relabel: Arc<RelabeledGraph<G>>) -> Self {
        assert!(
            relabel.matches_original(self.graph),
            "relabeled substrate built from a different graph shape"
        );
        self.relabel = Some(relabel);
        self
    }

    /// The engine's relabeled density substrate, if any.
    #[inline]
    pub fn relabeled(&self) -> Option<&RelabeledGraph<G>> {
        self.relabel.as_deref()
    }

    /// Fan the per-reference-node density loop of each *single* test
    /// out over `threads` scoped worker threads (default 1 = serial).
    ///
    /// Density BFS draws no randomness, so results are bit-identical
    /// to the serial engine at any thread count. Use this to cut the
    /// latency of one big test; when running many tests concurrently
    /// via [`crate::batch`], prefer across-test parallelism and leave
    /// this at 1 (combining both oversubscribes the CPUs).
    pub fn with_density_threads(mut self, threads: usize) -> Self {
        self.density_threads = threads.max(1);
        self
    }

    /// The configured within-test density thread count.
    #[inline]
    pub fn density_threads(&self) -> usize {
        self.density_threads
    }

    /// The graph under test.
    #[inline]
    pub fn graph(&self) -> &G {
        self.graph
    }

    /// The engine's vicinity index, however it was supplied
    /// (borrowed, shared or built in place).
    #[inline]
    pub fn vicinity_index(&self) -> Option<&VicinityIndex> {
        self.vicinity.as_ref().map(VicinityRef::get)
    }

    /// The engine's scratch pool (diagnostics: `pool().idle()` after a
    /// batch run is the high-water mark of concurrent tests).
    #[inline]
    pub fn pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Run the TESC test for events `va`, `vb` (occurrence node sets,
    /// need not be sorted).
    pub fn test(
        &self,
        va: &[NodeId],
        vb: &[NodeId],
        cfg: &TescConfig,
        rng: &mut impl Rng,
    ) -> Result<TescResult, TescError> {
        self.budget.check()?;
        let (a_sorted, b_sorted) = (normalize(va), normalize(vb));
        let union = merge_union(&a_sorted, &b_sorted);
        if union.is_empty() {
            return Err(TescError::NoEventNodes);
        }
        let mask_a = NodeMask::from_nodes(self.graph.num_nodes(), &a_sorted);
        let mask_b = NodeMask::from_nodes(self.graph.num_nodes(), &b_sorted);

        match cfg.sampler {
            SamplerKind::Importance { batch_size } => {
                if cfg.statistic != Statistic::KendallTau {
                    return Err(TescError::StatisticUnsupportedBySampler);
                }
                self.test_importance(
                    &union, &a_sorted, &b_sorted, &mask_a, &mask_b, cfg, batch_size, rng,
                )
            }
            _ => {
                // Content-addressed cache keys from the normalized
                // occurrence sets — only worth hashing when a cache is
                // attached.
                let keys = self.cache.is_some().then(|| {
                    (
                        EventKey::from_normalized(a_sorted.clone()),
                        EventKey::from_normalized(b_sorted.clone()),
                    )
                });
                self.test_uniform(
                    &union,
                    &a_sorted,
                    &b_sorted,
                    &mask_a,
                    &mask_b,
                    keys.as_ref(),
                    cfg,
                    rng,
                )
            }
        }
    }

    /// Substrate-space occurrence lists for a grouped density run —
    /// the owned storage a [`GroupKernelPlan`] borrows (mirrors
    /// [`TescEngine::substrate_masks`] for the mask-based plans).
    /// Shared with the planner's fused stage (b), so the "which
    /// substrate does a grouped plan use" decision lives in one place.
    pub(crate) fn group_slot_nodes(&self, sets: &[&[NodeId]]) -> Vec<Vec<NodeId>> {
        match self.relabel.as_deref() {
            Some(r) => sets.iter().map(|s| r.map().map_to_new(s)).collect(),
            None => sets.iter().map(|s| s.to_vec()).collect(),
        }
    }

    /// Resolve this engine's grouped density execution plan. Shared
    /// with the planner's fused stage (b).
    pub(crate) fn group_plan<'p>(
        &'p self,
        slot_nodes: &'p [Vec<NodeId>],
        h: u32,
    ) -> GroupKernelPlan<'p, G> {
        match self.relabel.as_deref() {
            Some(r) => GroupKernelPlan {
                graph: r.graph(),
                slot_nodes,
                translate: Some(r.map()),
                h,
            },
            None => GroupKernelPlan {
                graph: self.graph,
                slot_nodes,
                translate: None,
                h,
            },
        }
    }

    /// Translated event masks when a relabeled substrate is active —
    /// the owned storage a [`KernelPlan`] borrows.
    fn substrate_masks(
        &self,
        mask_a: &NodeMask,
        mask_b: &NodeMask,
    ) -> Option<(NodeMask, NodeMask)> {
        self.relabel.as_deref().map(|r| {
            (
                translate_mask(r.map(), mask_a),
                translate_mask(r.map(), mask_b),
            )
        })
    }

    /// Resolve this engine's density execution plan for one test:
    /// substrate graph, substrate-space masks, translation and kernel.
    fn density_plan<'p>(
        &'p self,
        mask_a: &'p NodeMask,
        mask_b: &'p NodeMask,
        translated: &'p Option<(NodeMask, NodeMask)>,
        h: u32,
    ) -> KernelPlan<'p, G> {
        match (self.relabel.as_deref(), translated) {
            (Some(r), Some((ta, tb))) => KernelPlan {
                graph: r.graph(),
                mask_a: ta,
                mask_b: tb,
                translate: Some(r.map()),
                use_bitset: self.kernel.use_bitset(r.graph(), h),
                h,
            },
            _ => KernelPlan {
                graph: self.graph,
                mask_a,
                mask_b,
                translate: None,
                use_bitset: self.kernel.use_bitset(self.graph, h),
                h,
            },
        }
    }

    /// Draw a uniform reference-node sample with the configured
    /// (non-importance) strategy. Shared with the pair-set planner
    /// (`crate::planner`), which must replicate the engine's sampling
    /// bit-for-bit.
    pub(crate) fn draw_uniform_sample(
        &self,
        scratch: &mut BfsScratch,
        union: &[NodeId],
        cfg: &TescConfig,
        rng: &mut impl Rng,
    ) -> Result<UniformSample, TescError> {
        self.budget.check()?;
        let max_draws = cfg.max_draw_factor.saturating_mul(cfg.sample_size).max(1);
        let sample = match cfg.sampler {
            SamplerKind::BatchBfs => {
                batch_bfs_sample(self.graph, scratch, union, cfg.h, cfg.sample_size, rng)
            }
            SamplerKind::Rejection => {
                let vic = self.require_vicinity(cfg.h)?;
                let union_mask = NodeMask::from_nodes(self.graph.num_nodes(), union);
                rejection_sample(
                    self.graph,
                    scratch,
                    union,
                    &union_mask,
                    vic,
                    cfg.h,
                    cfg.sample_size,
                    max_draws,
                    rng,
                )
            }
            SamplerKind::WholeGraph => {
                let union_mask = NodeMask::from_nodes(self.graph.num_nodes(), union);
                whole_graph_sample(
                    self.graph,
                    scratch,
                    &union_mask,
                    cfg.h,
                    cfg.sample_size,
                    rng,
                )
            }
            SamplerKind::Importance { .. } => unreachable!("importance handled separately"),
        };
        if sample.nodes.len() < 3 {
            return Err(TescError::TooFewReferenceNodes {
                found: sample.nodes.len(),
            });
        }
        Ok(sample)
    }

    /// Turn paired density vectors + a uniform sample into a result.
    /// Shared with the planner's scatter/correlate stage.
    pub(crate) fn finish_uniform(
        sa: &[f64],
        sb: &[f64],
        sample: &UniformSample,
        cfg: &TescConfig,
    ) -> TescResult {
        let (outcome, kendall) = match cfg.statistic {
            Statistic::KendallTau => {
                let summary = kendall_tau(sa, sb, KendallMethod::MergeSort);
                (
                    TestOutcome::from_z(summary.tau, summary.z, cfg.tail, cfg.alpha),
                    Some(summary),
                )
            }
            Statistic::SpearmanRho => {
                let s = spearman_rho(sa, sb);
                (TestOutcome::from_z(s.rho, s.z, cfg.tail, cfg.alpha), None)
            }
        };
        TescResult {
            outcome,
            n_refs: sample.nodes.len(),
            population_size: sample.population_size,
            draws: sample.draws,
            kendall,
        }
    }

    /// Uniform-sampler path: sample → densities → `t` (Eq. 4) → z.
    /// With an attached [`DensityCache`] (and `keys` present), the
    /// density phase memoizes per-`(event, node, h)` counts. When the
    /// kernel policy engages source grouping
    /// ([`BfsKernel::use_multi_source`]), the sampled reference nodes
    /// are batched into 64-way multi-source traversals instead of one
    /// BFS each; every configuration is bit-identical.
    #[allow(clippy::too_many_arguments)] // internal fan-in of one test's resolved pieces
    fn test_uniform(
        &self,
        union: &[NodeId],
        a_nodes: &[NodeId],
        b_nodes: &[NodeId],
        mask_a: &NodeMask,
        mask_b: &NodeMask,
        keys: Option<&(EventKey, EventKey)>,
        cfg: &TescConfig,
        rng: &mut impl Rng,
    ) -> Result<TescResult, TescError> {
        let sample = {
            let mut scratch = self.pool.acquire();
            self.draw_uniform_sample(&mut scratch, union, cfg, rng)?
        };
        if self
            .kernel
            .use_multi_source(self.graph, cfg.h, sample.nodes.len())
        {
            let slot_nodes = self.group_slot_nodes(&[a_nodes, b_nodes]);
            let gplan = self.group_plan(&slot_nodes, cfg.h);
            let (sa, sb) = match (self.cache.as_deref(), keys) {
                (Some(cache), Some((key_a, key_b))) => {
                    crate::density::density_vectors_cached_group_plan_budgeted(
                        &gplan,
                        &self.pool,
                        &sample.nodes,
                        key_a,
                        key_b,
                        self.density_threads,
                        self.group_size,
                        cache,
                        &self.budget,
                    )?
                }
                _ => crate::density::density_vectors_group_plan_budgeted(
                    &gplan,
                    &self.pool,
                    &sample.nodes,
                    self.density_threads,
                    self.group_size,
                    &self.budget,
                )?,
            };
            return Ok(Self::finish_uniform(&sa, &sb, &sample, cfg));
        }
        let translated = self.substrate_masks(mask_a, mask_b);
        let plan = self.density_plan(mask_a, mask_b, &translated, cfg.h);
        let (sa, sb) = match (self.cache.as_deref(), keys) {
            (Some(cache), Some((key_a, key_b))) => {
                crate::density::density_vectors_cached_plan_budgeted(
                    &plan,
                    &self.pool,
                    &sample.nodes,
                    key_a,
                    key_b,
                    self.density_threads,
                    cache,
                    &self.budget,
                )?
            }
            _ => crate::density::density_vectors_plan_budgeted(
                &plan,
                &self.pool,
                &sample.nodes,
                self.density_threads,
                &self.budget,
            )?,
        };
        Ok(Self::finish_uniform(&sa, &sb, &sample, cfg))
    }

    /// Intensity-weighted TESC test — the Sec. 6 extension. Densities
    /// use the events' intensity mass (see [`crate::intensity`]);
    /// reference eligibility and sampling are presence-based and
    /// unchanged.
    pub fn test_intensity(
        &self,
        a: &crate::intensity::Intensities,
        b: &crate::intensity::Intensities,
        cfg: &TescConfig,
        rng: &mut impl Rng,
    ) -> Result<TescResult, TescError> {
        self.budget.check()?;
        assert_eq!(
            a.num_nodes(),
            self.graph.num_nodes(),
            "intensities sized for a different graph"
        );
        assert_eq!(b.num_nodes(), self.graph.num_nodes());
        let union = merge_union(a.support(), b.support());
        if union.is_empty() {
            return Err(TescError::NoEventNodes);
        }
        let mut scratch = self.pool.acquire();
        match cfg.sampler {
            SamplerKind::Importance { batch_size } => {
                if cfg.statistic != Statistic::KendallTau {
                    return Err(TescError::StatisticUnsupportedBySampler);
                }
                let vic = self.require_vicinity(cfg.h)?;
                let max_draws = cfg.max_draw_factor.saturating_mul(cfg.sample_size).max(1);
                let sample = importance_sample(
                    self.graph,
                    &mut scratch,
                    &union,
                    vic,
                    cfg.h,
                    cfg.sample_size,
                    batch_size,
                    max_draws,
                    rng,
                );
                let n = sample.nodes.len();
                if n < 3 {
                    return Err(TescError::TooFewReferenceNodes { found: n });
                }
                drop(scratch);
                let counts = self.intensity_counts_for(&sample.nodes, cfg.h, a, b)?;
                let mut sa = Vec::with_capacity(n);
                let mut sb = Vec::with_capacity(n);
                let mut omega = Vec::with_capacity(n);
                for (i, c) in counts.iter().enumerate() {
                    debug_assert!(c.count_union > 0);
                    sa.push(c.density_a());
                    sb.push(c.density_b());
                    omega.push(sample.multiplicities[i] as f64 / c.count_union as f64);
                }
                Ok(Self::finish_weighted(&sa, &sb, &omega, &sample, cfg))
            }
            _ => {
                let sample = self.draw_uniform_sample(&mut scratch, &union, cfg, rng)?;
                drop(scratch);
                let counts = self.intensity_counts_for(&sample.nodes, cfg.h, a, b)?;
                let (sa, sb) = counts
                    .iter()
                    .map(|c| (c.density_a(), c.density_b()))
                    .unzip::<_, _, Vec<f64>, Vec<f64>>();
                Ok(Self::finish_uniform(&sa, &sb, &sample, cfg))
            }
        }
    }

    /// Intensity densities for a reference sample, honoring
    /// `density_threads` like the presence-based phases.
    fn intensity_counts_for(
        &self,
        refs: &[NodeId],
        h: u32,
        a: &crate::intensity::Intensities,
        b: &crate::intensity::Intensities,
    ) -> Result<Vec<crate::intensity::IntensityCounts>, Interrupted> {
        let zero = crate::intensity::IntensityCounts {
            vicinity_size: 0,
            mass_a: 0.0,
            mass_b: 0.0,
            count_union: 0,
        };
        let budget = &self.budget;
        let counts =
            crate::density::map_refs_pooled(&self.pool, refs, self.density_threads, zero, {
                |scratch, r| {
                    // Per-reference-node check (the intensity BFS itself is
                    // bounded per node); sentinels are discarded below.
                    if budget.is_exhausted() {
                        return zero;
                    }
                    crate::intensity::intensity_counts(self.graph, scratch, r, h, a, b)
                }
            });
        budget.check()?;
        Ok(counts)
    }

    /// Assemble the importance-sampled (weighted `t̃`) result. Shared
    /// with the planner's scatter/correlate stage.
    pub(crate) fn finish_weighted(
        sa: &[f64],
        sb: &[f64],
        omega: &[f64],
        sample: &crate::sampler::WeightedSample,
        cfg: &TescConfig,
    ) -> TescResult {
        let n = sa.len();
        let t_tilde = weighted_tau(sa, sb, omega);
        let u = nontrivial_tie_group_sizes(sa);
        let v = nontrivial_tie_group_sizes(sb);
        let var_s = var_s_tie_corrected(n, &u, &v);
        let half = (n * (n - 1) / 2) as f64;
        let sigma_tau = (var_s / (half * half)).sqrt();
        let z = if sigma_tau > 0.0 {
            t_tilde / sigma_tau
        } else {
            0.0
        };
        let outcome = TestOutcome::from_z(t_tilde, z, cfg.tail, cfg.alpha);
        TescResult {
            outcome,
            n_refs: n,
            population_size: None,
            draws: sample.total_draws,
            kendall: None,
        }
    }

    /// Importance-sampler path: weighted draws → densities → `t̃`
    /// (Eq. 8) → z against the tie-corrected null variance.
    #[allow(clippy::too_many_arguments)] // internal fan-in of one test's resolved pieces
    fn test_importance(
        &self,
        union: &[NodeId],
        a_nodes: &[NodeId],
        b_nodes: &[NodeId],
        mask_a: &NodeMask,
        mask_b: &NodeMask,
        cfg: &TescConfig,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Result<TescResult, TescError> {
        let vic = self.require_vicinity(cfg.h)?;
        let max_draws = cfg.max_draw_factor.saturating_mul(cfg.sample_size).max(1);
        let mut scratch = self.pool.acquire();
        let sample = importance_sample(
            self.graph,
            &mut scratch,
            union,
            vic,
            cfg.h,
            cfg.sample_size,
            batch_size,
            max_draws,
            rng,
        );
        let n = sample.nodes.len();
        if n < 3 {
            return Err(TescError::TooFewReferenceNodes { found: n });
        }
        drop(scratch);
        // One BFS per distinct node gathers densities AND the inclusion
        // weight ingredient |V^h_r ∩ V_{a∪b}| (RejectSamp's `c`); the
        // loop honors `density_threads` like every other density phase
        // and runs through the same kernel/relabeling plan. Source
        // grouping fuses the union set as a third slot, so one
        // multi-source traversal still yields all four integers.
        let counts: Vec<DensityCounts> = if self.kernel.use_multi_source(self.graph, cfg.h, n) {
            let slot_nodes = self.group_slot_nodes(&[a_nodes, b_nodes, union]);
            let gplan = self.group_plan(&slot_nodes, cfg.h);
            crate::density::density_counts_group_plan_budgeted(
                &gplan,
                &self.pool,
                &sample.nodes,
                self.density_threads,
                self.group_size,
                &self.budget,
            )?
        } else {
            let translated = self.substrate_masks(mask_a, mask_b);
            let plan = self.density_plan(mask_a, mask_b, &translated, cfg.h);
            let zero = DensityCounts {
                vicinity_size: 0,
                count_a: 0,
                count_b: 0,
                count_union: 0,
            };
            let budget = &self.budget;
            let counts = crate::density::map_refs_pooled(
                &self.pool,
                &sample.nodes,
                self.density_threads,
                zero,
                |scratch, r| {
                    // Sticky exhaustion: sentinel slots from skipped or
                    // interrupted nodes are discarded wholesale by the
                    // post-map check below.
                    if budget.is_exhausted() {
                        return zero;
                    }
                    plan.counts_budgeted(scratch, r, budget).unwrap_or(zero)
                },
            );
            budget.check()?;
            counts
        };
        let mut sa = Vec::with_capacity(n);
        let mut sb = Vec::with_capacity(n);
        let mut omega = Vec::with_capacity(n);
        for (i, c) in counts.iter().enumerate() {
            debug_assert!(c.count_union > 0, "sampled node must see an event");
            sa.push(c.density_a());
            sb.push(c.density_b());
            // ω_i = w_i / p(r_i); p(r_i) = count_union / N_sum and the
            // constant N_sum cancels in Eq. 8.
            omega.push(sample.multiplicities[i] as f64 / c.count_union as f64);
        }
        // Significance "accordingly" (Sec. 4.2): the same tie-corrected
        // null variance as the unweighted statistic over n distinct
        // reference nodes.
        Ok(Self::finish_weighted(&sa, &sb, &omega, &sample, cfg))
    }

    /// Exact τ over the *entire* reference population `V^h_{a∪b}` —
    /// Eq. 3 without sampling. Intended for validation on small graphs
    /// (cost `O(N²)` pairs via the merge-sort counter's `O(N log N)`).
    pub fn exact_summary(
        &self,
        va: &[NodeId],
        vb: &[NodeId],
        h: u32,
    ) -> Result<KendallSummary, TescError> {
        let (a_sorted, b_sorted) = (normalize(va), normalize(vb));
        let union = merge_union(&a_sorted, &b_sorted);
        if union.is_empty() {
            return Err(TescError::NoEventNodes);
        }
        let mut population = Vec::new();
        self.pool
            .acquire()
            .h_vicinity_into(self.graph, &union, h, &mut population);
        if population.len() < 3 {
            return Err(TescError::TooFewReferenceNodes {
                found: population.len(),
            });
        }
        let (sa, sb) = if self
            .kernel
            .use_multi_source(self.graph, h, population.len())
        {
            let slot_nodes = self.group_slot_nodes(&[&a_sorted, &b_sorted]);
            let gplan = self.group_plan(&slot_nodes, h);
            crate::density::density_vectors_group_plan(
                &gplan,
                &self.pool,
                &population,
                self.density_threads,
                self.group_size,
            )
        } else {
            let mask_a = NodeMask::from_nodes(self.graph.num_nodes(), &a_sorted);
            let mask_b = NodeMask::from_nodes(self.graph.num_nodes(), &b_sorted);
            let translated = self.substrate_masks(&mask_a, &mask_b);
            let plan = self.density_plan(&mask_a, &mask_b, &translated, h);
            crate::density::density_vectors_plan(
                &plan,
                &self.pool,
                &population,
                self.density_threads,
            )
        };
        Ok(kendall_tau(&sa, &sb, KendallMethod::MergeSort))
    }

    pub(crate) fn require_vicinity(&self, h: u32) -> Result<&VicinityIndex, TescError> {
        match self.vicinity.as_ref().map(VicinityRef::get) {
            Some(v) if v.max_level() >= h => Ok(v),
            _ => Err(TescError::MissingVicinityIndex { needed_h: h }),
        }
    }
}

pub(crate) fn normalize(nodes: &[NodeId]) -> Vec<NodeId> {
    let mut v = nodes.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_events::simulate::{independent_pair, negative_pair, positive_pair};
    use tesc_graph::generators::{barabasi_albert, grid, planted_partition};
    use tesc_stats::significance::Verdict;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn all_samplers() -> Vec<SamplerKind> {
        vec![
            SamplerKind::BatchBfs,
            SamplerKind::Rejection,
            SamplerKind::Importance { batch_size: 1 },
            SamplerKind::Importance { batch_size: 3 },
            SamplerKind::WholeGraph,
        ]
    }

    #[test]
    fn detects_planted_positive_pair_with_every_sampler() {
        // h = 1 positive detection needs a triangle-dense substrate
        // (the paper's DBLP co-authorship graph is clique-heavy); a
        // community graph with dense blocks models that.
        let (g, _) = planted_partition(400, 10, 0.8, 0.0008, &mut rng(1));
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let mut scratch = BfsScratch::new(g.num_nodes());
        let lp = positive_pair(&g, &mut scratch, 300, 1, &mut rng(2)).unwrap();
        let pair = lp.to_pair();
        for sampler in all_samplers() {
            let cfg = TescConfig::new(1)
                .with_sample_size(600)
                .with_tail(Tail::Upper)
                .with_sampler(sampler);
            let res = engine.test(&pair.a, &pair.b, &cfg, &mut rng(3)).unwrap();
            assert_eq!(
                res.outcome.verdict,
                Verdict::PositiveCorrelation,
                "sampler {sampler}: z = {}",
                res.z()
            );
        }
    }

    #[test]
    fn detects_planted_negative_pair_with_every_sampler() {
        let g = barabasi_albert(4000, 3, &mut rng(4));
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let mut scratch = BfsScratch::new(g.num_nodes());
        let pair = negative_pair(&g, &mut scratch, 120, 120, 1, &mut rng(5)).unwrap();
        for sampler in all_samplers() {
            let cfg = TescConfig::new(1)
                .with_sample_size(300)
                .with_tail(Tail::Lower)
                .with_sampler(sampler);
            let res = engine.test(&pair.a, &pair.b, &cfg, &mut rng(6)).unwrap();
            assert_eq!(
                res.outcome.verdict,
                Verdict::NegativeCorrelation,
                "sampler {sampler}: z = {}",
                res.z()
            );
        }
    }

    #[test]
    fn independent_events_rarely_declared_positive() {
        // One-tailed Type-I check for attraction, matching the paper's
        // one-tailed evaluation protocol (Sec. 5.2).
        let g = barabasi_albert(3000, 3, &mut rng(7));
        let engine = TescEngine::new(&g);
        let mut rejections = 0;
        let trials = 40;
        for t in 0..trials {
            let pair = independent_pair(&g, 100, 100, &mut rng(100 + t)).unwrap();
            let cfg = TescConfig::new(1)
                .with_sample_size(200)
                .with_tail(Tail::Upper);
            let res = engine
                .test(&pair.a, &pair.b, &cfg, &mut rng(200 + t))
                .unwrap();
            if res.outcome.is_significant() {
                rejections += 1;
            }
        }
        assert!(
            rejections <= 6,
            "false-attraction rate too high: {rejections}/{trials}"
        );
    }

    #[test]
    fn sparse_independent_events_skew_negative_at_h1() {
        // Documented property of the measure: two sparse independent
        // events at small h rarely co-occur in any vicinity, so most
        // cross pairs of reference nodes are discordant and TESC reads
        // repulsion. This is exactly why the paper calls 1-hop negative
        // correlations "easier": "for h = 1 it is easier to find a node
        // whose 1-vicinity does not even overlap with V^1_a".
        let g = barabasi_albert(3000, 3, &mut rng(21));
        let engine = TescEngine::new(&g);
        let pair = independent_pair(&g, 100, 100, &mut rng(22)).unwrap();
        let cfg = TescConfig::new(1).with_sample_size(300);
        let res = engine.test(&pair.a, &pair.b, &cfg, &mut rng(23)).unwrap();
        assert!(
            res.z() < 0.0,
            "sparse independent events should lean negative"
        );
    }

    #[test]
    fn batch_bfs_uses_whole_population_when_small() {
        let g = grid(8, 8);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(2).with_sample_size(10_000);
        let res = engine.test(&[0, 1], &[8, 9], &cfg, &mut rng(8)).unwrap();
        let pop = res.population_size.unwrap();
        assert_eq!(res.n_refs, pop, "n > N must clamp to the population");
        assert!(res.kendall.is_some());
    }

    #[test]
    fn exact_summary_matches_full_sample_tau() {
        let g = grid(12, 12);
        let engine = TescEngine::new(&g);
        let va: Vec<u32> = vec![0, 1, 2, 13, 26];
        let vb: Vec<u32> = vec![14, 15, 27, 40];
        let exact = engine.exact_summary(&va, &vb, 1).unwrap();
        // A Batch BFS "sample" big enough to take the full population
        // must produce the identical statistic.
        let cfg = TescConfig::new(1).with_sample_size(1_000_000);
        let sampled = engine.test(&va, &vb, &cfg, &mut rng(9)).unwrap();
        let k = sampled.kendall.unwrap();
        assert_eq!(exact.n, k.n);
        assert!((exact.tau - k.tau).abs() < 1e-12);
        assert!((exact.z - k.z).abs() < 1e-12);
    }

    #[test]
    fn empty_events_error() {
        let g = grid(4, 4);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1);
        assert_eq!(
            engine.test(&[], &[], &cfg, &mut rng(0)).unwrap_err(),
            TescError::NoEventNodes
        );
        assert_eq!(
            engine.exact_summary(&[], &[], 1).unwrap_err(),
            TescError::NoEventNodes
        );
    }

    #[test]
    fn missing_vicinity_index_error() {
        let g = grid(6, 6);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1).with_sampler(SamplerKind::Importance { batch_size: 1 });
        let err = engine.test(&[0], &[1], &cfg, &mut rng(0)).unwrap_err();
        assert!(matches!(
            err,
            TescError::MissingVicinityIndex { needed_h: 1 }
        ));
    }

    #[test]
    fn too_shallow_vicinity_index_error() {
        let g = grid(6, 6);
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let cfg = TescConfig::new(3).with_sampler(SamplerKind::Rejection);
        let err = engine.test(&[0], &[1], &cfg, &mut rng(0)).unwrap_err();
        assert!(matches!(
            err,
            TescError::MissingVicinityIndex { needed_h: 3 }
        ));
    }

    #[test]
    fn too_few_reference_nodes_error() {
        // Isolated event node: population = {v} only.
        let g = tesc_graph::csr::from_edges(5, &[(1, 2)]);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1).with_sample_size(10);
        let err = engine.test(&[0], &[], &cfg, &mut rng(0)).unwrap_err();
        assert_eq!(err, TescError::TooFewReferenceNodes { found: 1 });
    }

    #[test]
    fn results_are_seed_reproducible() {
        let g = barabasi_albert(1000, 3, &mut rng(10));
        let engine = TescEngine::new(&g);
        let va: Vec<u32> = (0..50).collect();
        let vb: Vec<u32> = (25..75).collect();
        let cfg = TescConfig::new(1).with_sample_size(100);
        let r1 = engine.test(&va, &vb, &cfg, &mut rng(11)).unwrap();
        let r2 = engine.test(&va, &vb, &cfg, &mut rng(11)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn importance_estimate_close_to_exact_on_small_graph() {
        let g = grid(15, 15);
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let va: Vec<u32> = (0..30).collect();
        let vb: Vec<u32> = (15..45).collect();
        let exact = engine.exact_summary(&va, &vb, 1).unwrap();
        // Sample essentially the whole population with importance
        // weighting; t̃ should approach τ (consistency, Thm. 1).
        let cfg = TescConfig::new(1)
            .with_sample_size(exact.n)
            .with_sampler(SamplerKind::Importance { batch_size: 1 });
        let res = engine.test(&va, &vb, &cfg, &mut rng(12)).unwrap();
        assert!(
            (res.statistic() - exact.tau).abs() < 0.15,
            "t̃ = {}, τ = {}",
            res.statistic(),
            exact.tau
        );
        assert_eq!(
            res.z() > 0.0,
            exact.z > 0.0,
            "sign of the evidence must agree"
        );
    }

    #[test]
    fn spearman_statistic_agrees_with_kendall_on_verdicts() {
        let (g, _) = planted_partition(400, 10, 0.8, 0.0008, &mut rng(31));
        let engine = TescEngine::new(&g);
        let mut scratch = BfsScratch::new(g.num_nodes());
        let lp = positive_pair(&g, &mut scratch, 200, 1, &mut rng(32)).unwrap();
        let pair = lp.to_pair();
        let base = TescConfig::new(1)
            .with_sample_size(400)
            .with_tail(Tail::Upper);
        let kt = engine.test(&pair.a, &pair.b, &base, &mut rng(33)).unwrap();
        let sp = engine
            .test(
                &pair.a,
                &pair.b,
                &base.with_statistic(Statistic::SpearmanRho),
                &mut rng(33),
            )
            .unwrap();
        assert_eq!(kt.outcome.verdict, sp.outcome.verdict);
        assert!(
            sp.kendall.is_none(),
            "Spearman result carries no Kendall summary"
        );
        // ρ typically exceeds τ in magnitude for monotone association.
        assert!(sp.statistic() >= kt.statistic() * 0.8);
    }

    #[test]
    fn spearman_with_importance_sampler_is_rejected() {
        let g = grid(6, 6);
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let cfg = TescConfig::new(1)
            .with_sampler(SamplerKind::Importance { batch_size: 1 })
            .with_statistic(Statistic::SpearmanRho);
        let err = engine
            .test(&[0, 1], &[2, 3], &cfg, &mut rng(34))
            .unwrap_err();
        assert_eq!(err, TescError::StatisticUnsupportedBySampler);
    }

    #[test]
    fn intensity_test_with_unit_weights_matches_plain_test() {
        let g = barabasi_albert(1500, 3, &mut rng(41));
        let engine = TescEngine::new(&g);
        let va: Vec<u32> = (0..80).collect();
        let vb: Vec<u32> = (40..120).collect();
        let cfg = TescConfig::new(1).with_sample_size(200);
        let plain = engine.test(&va, &vb, &cfg, &mut rng(42)).unwrap();
        let ia = crate::intensity::Intensities::uniform(g.num_nodes(), &va);
        let ib = crate::intensity::Intensities::uniform(g.num_nodes(), &vb);
        let weighted = engine.test_intensity(&ia, &ib, &cfg, &mut rng(42)).unwrap();
        assert_eq!(
            plain, weighted,
            "unit intensities must be a strict generalization"
        );
    }

    #[test]
    fn intensity_strengthens_correlation_signal() {
        // Co-located heavy-intensity occurrences against a uniform
        // background: the weighted densities co-vary more strongly
        // than the presence-only view.
        let (g, _) = planted_partition(200, 10, 0.8, 0.001, &mut rng(43));
        let n = g.num_nodes();
        // Both events occur *everywhere* lightly (pure presence sees
        // nothing but ties)…
        let every: Vec<(u32, f64)> = (0..n as u32).map(|v| (v, 1.0)).collect();
        let mut pa = every.clone();
        let mut pb = every;
        // …but share heavy hot spots in communities 0..30.
        for c in 0..30u32 {
            for i in 0..5 {
                pa.push((c * 10 + i, 50.0));
                pb.push((c * 10 + 5 + i, 50.0));
            }
        }
        let ia = crate::intensity::Intensities::from_pairs(n, &pa);
        let ib = crate::intensity::Intensities::from_pairs(n, &pb);
        let cfg = TescConfig::new(1)
            .with_sample_size(400)
            .with_tail(Tail::Upper);
        let weighted = engine_for(&g)
            .test_intensity(&ia, &ib, &cfg, &mut rng(44))
            .unwrap();
        assert!(
            weighted.z() > 2.33,
            "intensity view must expose the hot spots: z = {}",
            weighted.z()
        );
        // The presence-only view is blind here: every node carries both
        // events, so all densities are tied at 1 within equal-size
        // vicinities and no attraction is detectable.
        let va: Vec<u32> = (0..n as u32).collect();
        let plain = engine_for(&g).test(&va, &va, &cfg, &mut rng(44)).unwrap();
        assert!(plain.z() < weighted.z());
    }

    fn engine_for(g: &CsrGraph) -> TescEngine<'_> {
        TescEngine::new(g)
    }

    #[test]
    fn intensity_importance_sampling_path_works() {
        let (g, _) = planted_partition(300, 10, 0.7, 0.001, &mut rng(45));
        let idx = VicinityIndex::build(&g, 1);
        let engine = TescEngine::with_vicinity_index(&g, &idx);
        let mut scratch = BfsScratch::new(g.num_nodes());
        let lp = positive_pair(&g, &mut scratch, 150, 1, &mut rng(46)).unwrap();
        let ia = crate::intensity::Intensities::uniform(g.num_nodes(), &lp.a_nodes);
        let ib = crate::intensity::Intensities::uniform(g.num_nodes(), &lp.b_nodes);
        let cfg = TescConfig::new(1)
            .with_sample_size(300)
            .with_tail(Tail::Upper)
            .with_sampler(SamplerKind::Importance { batch_size: 1 });
        let r = engine.test_intensity(&ia, &ib, &cfg, &mut rng(47)).unwrap();
        assert_eq!(
            r.outcome.verdict,
            Verdict::PositiveCorrelation,
            "z = {}",
            r.z()
        );
    }

    #[test]
    fn intensity_empty_events_error() {
        let g = grid(4, 4);
        let engine = TescEngine::new(&g);
        let empty = crate::intensity::Intensities::uniform(16, &[]);
        let cfg = TescConfig::new(1);
        assert_eq!(
            engine
                .test_intensity(&empty, &empty, &cfg, &mut rng(48))
                .unwrap_err(),
            TescError::NoEventNodes
        );
    }

    #[test]
    fn build_vicinity_honors_density_threads_via_build_parallel() {
        // 1600 nodes exceeds build_parallel's serial-fallback
        // threshold, so 4 threads genuinely exercises the parallel
        // sweep; the built index must equal a manual build.
        let g = grid(40, 40);
        let manual = VicinityIndex::build(&g, 2);
        let engine = TescEngine::new(&g)
            .with_density_threads(4)
            .build_vicinity(2);
        assert_eq!(engine.density_threads(), 4);
        assert_eq!(engine.vicinity_index(), Some(&manual));
        // And the index actually enables the samplers that need it.
        let cfg = TescConfig::new(2)
            .with_sample_size(60)
            .with_sampler(SamplerKind::Rejection);
        assert!(engine
            .test(&[0, 1, 2], &[41, 42], &cfg, &mut rng(50))
            .is_ok());
    }

    #[test]
    fn vicinity_arc_behaves_like_borrowed() {
        let g = grid(10, 10);
        let idx = VicinityIndex::build(&g, 1);
        let borrowed = TescEngine::with_vicinity_index(&g, &idx);
        let owned = TescEngine::with_vicinity_arc(&g, std::sync::Arc::new(idx.clone()));
        let cfg = TescConfig::new(1)
            .with_sample_size(40)
            .with_sampler(SamplerKind::Rejection);
        let rb = borrowed
            .test(&[0, 1], &[11, 12], &cfg, &mut rng(51))
            .unwrap();
        let ro = owned.test(&[0, 1], &[11, 12], &cfg, &mut rng(51)).unwrap();
        assert_eq!(rb, ro);
    }

    #[test]
    fn cached_engine_results_bit_identical() {
        let g = barabasi_albert(1200, 3, &mut rng(52));
        let va: Vec<u32> = (0..60).collect();
        let vb: Vec<u32> = (30..90).collect();
        let plain = TescEngine::new(&g);
        let cache = std::sync::Arc::new(crate::cache::DensityCache::for_graph(&g));
        let cached = TescEngine::new(&g).with_density_cache(cache.clone());
        let cfg = TescConfig::new(1).with_sample_size(150);
        let r1 = plain.test(&va, &vb, &cfg, &mut rng(53)).unwrap();
        let r2 = cached.test(&va, &vb, &cfg, &mut rng(53)).unwrap();
        let r3 = cached.test(&va, &vb, &cfg, &mut rng(53)).unwrap();
        assert_eq!(r1, r2, "cold cache");
        assert_eq!(r1, r3, "warm cache");
        assert!(cache.hits() > 0, "second run must hit");
    }

    #[test]
    #[should_panic(expected = "different graph shape")]
    fn cache_for_wrong_graph_rejected() {
        let g1 = grid(5, 5);
        let g2 = grid(6, 6);
        let cache = std::sync::Arc::new(crate::cache::DensityCache::for_graph(&g1));
        let _ = TescEngine::new(&g2).with_density_cache(cache);
    }

    #[test]
    fn kernel_override_engines_bit_identical() {
        let g = barabasi_albert(1200, 3, &mut rng(60));
        let va: Vec<u32> = (0..60).collect();
        let vb: Vec<u32> = (30..90).collect();
        let cfg = TescConfig::new(2).with_sample_size(150);
        let reference = TescEngine::new(&g)
            .with_density_kernel(BfsKernel::Scalar)
            .test(&va, &vb, &cfg, &mut rng(61))
            .unwrap();
        for kernel in [BfsKernel::Auto, BfsKernel::Bitset] {
            let got = TescEngine::new(&g)
                .with_density_kernel(kernel)
                .test(&va, &vb, &cfg, &mut rng(61))
                .unwrap();
            assert_eq!(reference, got, "kernel {kernel}");
            assert_eq!(reference.z().to_bits(), got.z().to_bits());
        }
    }

    #[test]
    fn multi_kernel_engine_bit_identical_at_every_group_size() {
        let g = barabasi_albert(1200, 3, &mut rng(70));
        let va: Vec<u32> = (0..60).collect();
        let vb: Vec<u32> = (30..90).collect();
        let cfg = TescConfig::new(2).with_sample_size(150);
        let reference = TescEngine::new(&g)
            .with_density_kernel(BfsKernel::Scalar)
            .test(&va, &vb, &cfg, &mut rng(71))
            .unwrap();
        for group_size in [1usize, 63, 64] {
            let got = TescEngine::new(&g)
                .with_density_kernel(BfsKernel::Multi)
                .with_source_group_size(group_size)
                .test(&va, &vb, &cfg, &mut rng(71))
                .unwrap();
            assert_eq!(reference, got, "group size {group_size}");
            assert_eq!(reference.z().to_bits(), got.z().to_bits());
        }
        // The importance path fuses the union as a third slot.
        let idx = VicinityIndex::build(&g, 2);
        let icfg = cfg.with_sampler(SamplerKind::Importance { batch_size: 2 });
        let iref = TescEngine::with_vicinity_index(&g, &idx)
            .with_density_kernel(BfsKernel::Scalar)
            .test(&va, &vb, &icfg, &mut rng(72))
            .unwrap();
        let igot = TescEngine::with_vicinity_index(&g, &idx)
            .with_density_kernel(BfsKernel::Multi)
            .test(&va, &vb, &icfg, &mut rng(72))
            .unwrap();
        assert_eq!(iref, igot, "importance path grouped");
        // exact_summary routes through the grouped executor too.
        let e1 = TescEngine::new(&g).exact_summary(&va, &vb, 1).unwrap();
        let e2 = TescEngine::new(&g)
            .with_density_kernel(BfsKernel::Multi)
            .exact_summary(&va, &vb, 1)
            .unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "source group size must be in 1..=64")]
    fn zero_group_size_rejected() {
        let g = grid(4, 4);
        let _ = TescEngine::new(&g).with_source_group_size(0);
    }

    #[test]
    fn relabeled_engine_bit_identical_in_original_ids() {
        let (g, _) = planted_partition(400, 10, 0.8, 0.001, &mut rng(62));
        let va: Vec<u32> = (0..40).collect();
        let vb: Vec<u32> = (20..60).collect();
        let cfg = TescConfig::new(2)
            .with_sample_size(200)
            .with_tail(Tail::Upper);
        let plain = TescEngine::new(&g);
        let reference = plain.test(&va, &vb, &cfg, &mut rng(63)).unwrap();
        let relabeled = TescEngine::new(&g)
            .with_relabeling(true)
            .with_density_kernel(BfsKernel::Bitset);
        assert!(relabeled.relabeled().is_some());
        let got = relabeled.test(&va, &vb, &cfg, &mut rng(63)).unwrap();
        assert_eq!(reference, got);
        // exact_summary routes through the same plan.
        let e1 = plain.exact_summary(&va, &vb, 1).unwrap();
        let e2 = relabeled.exact_summary(&va, &vb, 1).unwrap();
        assert_eq!(e1, e2);
        // Turning it back off drops the substrate.
        assert!(TescEngine::new(&g)
            .with_relabeling(true)
            .with_relabeling(false)
            .relabeled()
            .is_none());
    }

    #[test]
    #[should_panic(expected = "different graph shape")]
    fn relabeled_substrate_for_wrong_graph_rejected() {
        let g1 = grid(5, 5);
        let g2 = grid(6, 6);
        let sub = std::sync::Arc::new(tesc_graph::relabel::RelabeledGraph::build(&g1));
        let _ = TescEngine::new(&g2).with_relabeled_arc(sub);
    }

    #[test]
    fn duplicate_event_nodes_are_tolerated() {
        let g = grid(8, 8);
        let engine = TescEngine::new(&g);
        let cfg = TescConfig::new(1).with_sample_size(50);
        let r1 = engine
            .test(&[0, 0, 1, 1], &[2, 2, 3], &cfg, &mut rng(13))
            .unwrap();
        let r2 = engine.test(&[0, 1], &[2, 3], &cfg, &mut rng(13)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn overlapping_events_positive_tesc() {
        // Identical events are maximally attracted.
        let g = barabasi_albert(2000, 3, &mut rng(14));
        let engine = TescEngine::new(&g);
        let va: Vec<u32> = (0..100).collect();
        let cfg = TescConfig::new(1)
            .with_sample_size(200)
            .with_tail(Tail::Upper);
        let res = engine.test(&va, &va, &cfg, &mut rng(15)).unwrap();
        assert_eq!(res.outcome.verdict, Verdict::PositiveCorrelation);
        // τ_a stays below 1 because tied density pairs contribute 0.
        assert!(res.statistic() > 0.8, "τ = {}", res.statistic());
    }
}
