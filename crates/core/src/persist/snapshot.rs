//! The versioned, checksummed binary snapshot format.
//!
//! A snapshot file is a self-contained image of the durable half of a
//! [`crate::context::Snapshot`] — the CSR graph and the event store.
//! Everything else a snapshot carries (vicinity index, density cache,
//! relabeled substrate) is derived state and is rebuilt on load.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "TESCSNP1"
//! 8       ..    body:
//!                 u64  context version
//!                 u64  num_nodes
//!                 u64  num_edges
//!                 (u32 u, u32 v) × num_edges     (u < v, ascending)
//!                 u64  num_events
//!                 per event:
//!                   u64 name_len, name bytes (UTF-8)
//!                   u64 occ_len,  u32 × occ_len  (sorted node ids)
//! end−4   4     u32  CRC-32 of the body
//! ```
//!
//! Decoding reads the whole file, verifies the magic and the trailing
//! CRC over the body, then parses with bounds-checked reads — a
//! truncated, bit-flipped or torn snapshot yields a clean
//! [`DecodeError`], never a panic and never a half-built graph.

use tesc_events::EventStore;
use tesc_graph::{CsrGraph, GraphBuilder, NodeId};

use super::codec::{put_u32, put_u64, Cursor, DecodeError};
use super::crc::crc32;

/// Magic prefix of every snapshot file (8 bytes, version-suffixed).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TESCSNP1";

/// Serialize `(version, graph, events)` into a snapshot file image.
pub fn encode_snapshot(version: u64, graph: &CsrGraph, events: &EventStore) -> Vec<u8> {
    let mut body = Vec::with_capacity(32 + graph.num_edges() * 8);
    put_u64(&mut body, version);
    put_u64(&mut body, graph.num_nodes() as u64);
    put_u64(&mut body, graph.num_edges() as u64);
    for (u, v) in graph.edges() {
        put_u32(&mut body, u);
        put_u32(&mut body, v);
    }
    put_u64(&mut body, events.num_events() as u64);
    for (_, name, nodes) in events.iter() {
        put_u64(&mut body, name.len() as u64);
        body.extend_from_slice(name.as_bytes());
        put_u64(&mut body, nodes.len() as u64);
        for &n in nodes {
            put_u32(&mut body, n);
        }
    }
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc);
    out
}

/// Decode a snapshot file image back into `(version, graph, events)`.
///
/// Every failure mode — short file, wrong magic, CRC mismatch,
/// inconsistent lengths, out-of-range node ids — is a [`DecodeError`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, CsrGraph, EventStore), DecodeError> {
    let fail = |offset: usize, message: &str| DecodeError {
        offset,
        message: message.into(),
    };
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(fail(bytes.len(), "file shorter than magic + checksum"));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(fail(0, "bad snapshot magic"));
    }
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(fail(bytes.len() - 4, "snapshot checksum mismatch"));
    }

    let mut c = Cursor::new(body);
    let version = c.u64()?;
    let num_nodes_raw = c.u64()?;
    if num_nodes_raw > NodeId::MAX as u64 + 1 {
        return Err(fail(c.pos(), "node count exceeds the u32 id space"));
    }
    let num_nodes = num_nodes_raw as usize;
    let num_edges = c.len_prefix(8)?;
    let mut builder = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        let u = c.u32()?;
        let v = c.u32()?;
        if u >= v || (v as usize) >= num_nodes {
            return Err(fail(c.pos(), "edge endpoints out of order or range"));
        }
        builder.add_edge(u, v);
    }
    let graph = builder.build();

    let num_events = c.len_prefix(16)?; // ≥ 16 bytes per event (two length fields)
    let mut events = EventStore::new();
    for _ in 0..num_events {
        let name_len = c.len_prefix(1)?;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| fail(c.pos(), "event name is not UTF-8"))?
            .to_string();
        let occ_len = c.len_prefix(4)?;
        let mut nodes = Vec::with_capacity(occ_len);
        for _ in 0..occ_len {
            let n = c.u32()?;
            if n as usize >= num_nodes {
                return Err(fail(c.pos(), "occurrence node out of range"));
            }
            nodes.push(n);
        }
        events
            .try_add_event(name, nodes)
            .map_err(|e| fail(c.pos(), &format!("invalid event table: {e}")))?;
    }
    if !c.is_empty() {
        return Err(fail(c.pos(), "trailing bytes after the event table"));
    }
    Ok((version, graph, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::generators::grid;

    fn sample() -> (CsrGraph, EventStore) {
        let graph = grid(6, 6);
        let mut events = EventStore::new();
        events.add_event("alpha", vec![0, 3, 5, 9]);
        events.add_event("beta", vec![2, 3, 30]);
        events.add_event("empty", vec![]);
        (graph, events)
    }

    #[test]
    fn round_trips_bit_identically() {
        let (graph, events) = sample();
        let bytes = encode_snapshot(17, &graph, &events);
        let (version, g2, e2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(version, 17);
        assert_eq!(g2.fingerprint(), graph.fingerprint());
        assert_eq!(e2.fingerprint(), events.fingerprint());
        assert_eq!(g2, graph);
        // And re-encoding is deterministic.
        assert_eq!(encode_snapshot(17, &g2, &e2), bytes);
    }

    #[test]
    fn every_truncation_point_is_a_clean_error() {
        let (graph, events) = sample();
        let bytes = encode_snapshot(3, &graph, &events);
        for k in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..k]).is_err(),
                "truncation at byte {k} must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let (graph, events) = sample();
        let bytes = encode_snapshot(3, &graph, &events);
        for k in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[k] ^= 0x10;
            assert!(
                decode_snapshot(&flipped).is_err(),
                "bit flip at byte {k} must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (graph, events) = sample();
        let mut bytes = encode_snapshot(3, &graph, &events);
        bytes.extend_from_slice(b"tail");
        assert!(decode_snapshot(&bytes).is_err());
    }
}
