//! The versioned, checksummed binary snapshot format.
//!
//! A snapshot file is a self-contained image of the durable half of a
//! [`crate::context::Snapshot`] — the graph and the event store.
//! Everything else a snapshot carries (vicinity index, density cache,
//! relabeled substrate) is derived state and is rebuilt on load.
//!
//! Two generations exist. Writers emit **v2**, whose graph payload is
//! an embedded [`.tgraph` container](tesc_graph::container) — the
//! delta-encoded, varint-packed adjacency with its own header and
//! section CRCs — instead of v1's raw `(u32, u32)` edge pairs. On a
//! Barabási–Albert graph at `m = 8` that is ~3.6 B/edge rather than
//! 8 B/edge of body, which is what `fig13_recovery` measures as
//! snapshot bytes and load time. Readers accept both generations, so
//! stores written before the container era keep recovering.
//!
//! ```text
//! offset  size  field                         (v2; v1 differs only in
//! 0       8     magic  "TESCSNP2"              the graph payload: it
//! 8       ..    body:                          inlines edge pairs)
//!                 u64  context version
//!                 u64  tgraph_len, `.tgraph` container bytes
//!                 u64  num_events
//!                 per event:
//!                   u64 name_len, name bytes (UTF-8)
//!                   u64 occ_len,  u32 × occ_len  (sorted node ids)
//! end−4   4     u32  CRC-32 of the body
//! ```
//!
//! Decoding reads the whole file, verifies the magic and the trailing
//! CRC over the body, then parses with bounds-checked reads — the
//! embedded container additionally re-validates its own section CRCs,
//! structural invariants and fingerprint. A truncated, bit-flipped or
//! torn snapshot yields a clean [`DecodeError`], never a panic and
//! never a half-built graph.

use tesc_events::EventStore;
use tesc_graph::{decode_tgraph, encode_tgraph, CompressedCsr, CsrGraph, GraphBuilder, NodeId};

use super::codec::{put_u32, put_u64, Cursor, DecodeError};
use super::crc::crc32;

/// Magic prefix of every current-generation snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TESCSNP2";

/// Magic prefix of first-generation snapshots (raw edge pairs);
/// accepted by [`decode_snapshot`] for recovery compatibility.
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"TESCSNP1";

/// Serialize `(version, graph, events)` into a snapshot file image
/// (v2: the graph travels as an embedded `.tgraph` container).
pub fn encode_snapshot(version: u64, graph: &CsrGraph, events: &EventStore) -> Vec<u8> {
    let tgraph = encode_tgraph(&CompressedCsr::from_graph(graph), None);
    let mut body = Vec::with_capacity(32 + tgraph.len());
    put_u64(&mut body, version);
    put_u64(&mut body, tgraph.len() as u64);
    body.extend_from_slice(&tgraph);
    encode_event_table(&mut body, events);
    frame(SNAPSHOT_MAGIC, body)
}

fn encode_event_table(body: &mut Vec<u8>, events: &EventStore) {
    put_u64(body, events.num_events() as u64);
    for (_, name, nodes) in events.iter() {
        put_u64(body, name.len() as u64);
        body.extend_from_slice(name.as_bytes());
        put_u64(body, nodes.len() as u64);
        for &n in nodes {
            put_u32(body, n);
        }
    }
}

fn frame(magic: &[u8; 8], body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(magic.len() + body.len() + 4);
    out.extend_from_slice(magic);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc);
    out
}

/// Decode a snapshot file image (either generation) back into
/// `(version, graph, events)`.
///
/// Every failure mode — short file, wrong magic, CRC mismatch,
/// inconsistent lengths, out-of-range node ids, corrupt embedded
/// container — is a [`DecodeError`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, CsrGraph, EventStore), DecodeError> {
    let fail = |offset: usize, message: &str| DecodeError {
        offset,
        message: message.into(),
    };
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(fail(bytes.len(), "file shorter than magic + checksum"));
    }
    let magic = &bytes[..SNAPSHOT_MAGIC.len()];
    let v2 = if magic == SNAPSHOT_MAGIC {
        true
    } else if magic == SNAPSHOT_MAGIC_V1 {
        false
    } else {
        return Err(fail(0, "bad snapshot magic"));
    };
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(fail(bytes.len() - 4, "snapshot checksum mismatch"));
    }

    let mut c = Cursor::new(body);
    let version = c.u64()?;
    let graph = if v2 {
        let tgraph_len = c.len_prefix(1)?;
        let container = c.take(tgraph_len)?;
        decode_tgraph(container)?.graph.to_csr()
    } else {
        decode_v1_edges(&mut c, &fail)?
    };
    let num_nodes = graph.num_nodes();

    let num_events = c.len_prefix(16)?; // ≥ 16 bytes per event (two length fields)
    let mut events = EventStore::new();
    for _ in 0..num_events {
        let name_len = c.len_prefix(1)?;
        let name = std::str::from_utf8(c.take(name_len)?)
            .map_err(|_| fail(c.pos(), "event name is not UTF-8"))?
            .to_string();
        let occ_len = c.len_prefix(4)?;
        let mut nodes = Vec::with_capacity(occ_len);
        for _ in 0..occ_len {
            let n = c.u32()?;
            if n as usize >= num_nodes {
                return Err(fail(c.pos(), "occurrence node out of range"));
            }
            nodes.push(n);
        }
        events
            .try_add_event(name, nodes)
            .map_err(|e| fail(c.pos(), &format!("invalid event table: {e}")))?;
    }
    if !c.is_empty() {
        return Err(fail(c.pos(), "trailing bytes after the event table"));
    }
    Ok((version, graph, events))
}

/// The v1 graph payload: `u64 num_nodes, u64 num_edges,
/// (u32 u, u32 v) × num_edges` with `u < v` ascending.
fn decode_v1_edges(
    c: &mut Cursor<'_>,
    fail: &dyn Fn(usize, &str) -> DecodeError,
) -> Result<CsrGraph, DecodeError> {
    let num_nodes_raw = c.u64()?;
    if num_nodes_raw > NodeId::MAX as u64 + 1 {
        return Err(fail(c.pos(), "node count exceeds the u32 id space"));
    }
    let num_nodes = num_nodes_raw as usize;
    let num_edges = c.len_prefix(8)?;
    let mut builder = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        let u = c.u32()?;
        let v = c.u32()?;
        if u >= v || (v as usize) >= num_nodes {
            return Err(fail(c.pos(), "edge endpoints out of order or range"));
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::generators::grid;

    fn sample() -> (CsrGraph, EventStore) {
        let graph = grid(6, 6);
        let mut events = EventStore::new();
        events.add_event("alpha", vec![0, 3, 5, 9]);
        events.add_event("beta", vec![2, 3, 30]);
        events.add_event("empty", vec![]);
        (graph, events)
    }

    /// The v1 writer, kept verbatim so compatibility tests exercise
    /// genuine first-generation images.
    fn encode_snapshot_v1(version: u64, graph: &CsrGraph, events: &EventStore) -> Vec<u8> {
        let mut body = Vec::with_capacity(32 + graph.num_edges() * 8);
        put_u64(&mut body, version);
        put_u64(&mut body, graph.num_nodes() as u64);
        put_u64(&mut body, graph.num_edges() as u64);
        for (u, v) in graph.edges() {
            put_u32(&mut body, u);
            put_u32(&mut body, v);
        }
        encode_event_table(&mut body, events);
        frame(SNAPSHOT_MAGIC_V1, body)
    }

    #[test]
    fn round_trips_bit_identically() {
        let (graph, events) = sample();
        let bytes = encode_snapshot(17, &graph, &events);
        let (version, g2, e2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(version, 17);
        assert_eq!(g2.fingerprint(), graph.fingerprint());
        assert_eq!(e2.fingerprint(), events.fingerprint());
        assert_eq!(g2, graph);
        // And re-encoding is deterministic.
        assert_eq!(encode_snapshot(17, &g2, &e2), bytes);
    }

    #[test]
    fn v1_images_still_decode() {
        let (graph, events) = sample();
        let bytes = encode_snapshot_v1(9, &graph, &events);
        let (version, g2, e2) = decode_snapshot(&bytes).unwrap();
        assert_eq!(version, 9);
        assert_eq!(g2, graph);
        assert_eq!(e2.fingerprint(), events.fingerprint());
        // Both generations describe the same world.
        let (_, g3, e3) = decode_snapshot(&encode_snapshot(9, &graph, &events)).unwrap();
        assert_eq!(g2, g3);
        assert_eq!(e2.fingerprint(), e3.fingerprint());
    }

    #[test]
    fn v2_body_is_smaller_than_v1_on_dense_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let graph = tesc_graph::generators::barabasi_albert(2000, 8, &mut rng);
        let events = EventStore::new();
        let v1 = encode_snapshot_v1(1, &graph, &events).len();
        let v2 = encode_snapshot(1, &graph, &events).len();
        assert!(
            v2 < v1,
            "container snapshot ({v2} B) must undercut edge pairs ({v1} B)"
        );
    }

    #[test]
    fn every_truncation_point_is_a_clean_error() {
        let (graph, events) = sample();
        for bytes in [
            encode_snapshot(3, &graph, &events),
            encode_snapshot_v1(3, &graph, &events),
        ] {
            for k in 0..bytes.len() {
                assert!(
                    decode_snapshot(&bytes[..k]).is_err(),
                    "truncation at byte {k} must not decode"
                );
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let (graph, events) = sample();
        for bytes in [
            encode_snapshot(3, &graph, &events),
            encode_snapshot_v1(3, &graph, &events),
        ] {
            for k in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[k] ^= 0x10;
                assert!(
                    decode_snapshot(&flipped).is_err(),
                    "bit flip at byte {k} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (graph, events) = sample();
        let mut bytes = encode_snapshot(3, &graph, &events);
        bytes.extend_from_slice(b"tail");
        assert!(decode_snapshot(&bytes).is_err());
    }
}
