//! Crash-safe persistence: versioned snapshots + an ingestion WAL.
//!
//! A [`Store`] manages one data directory holding two kinds of files:
//!
//! * `snapshot-<version:016x>.tsnap` — a checksummed image of the
//!   durable half of a context version (CSR graph + event store; see
//!   [`snapshot`]). Derived state — vicinity index, density cache,
//!   relabeled substrate — is rebuilt on load.
//! * `wal-<base_version:016x>.tlog` — the write-ahead log of writer
//!   mutations since that base version, one CRC-framed record per
//!   published version (see [`wal`]).
//!
//! **Durability contract.** The writer path appends and fsyncs the
//! WAL record *before* publishing the version it produces, so every
//! version a reader ever observed survives a crash. Checkpoints
//! (snapshot + WAL rotation) happen synchronously on the writer path
//! every [`StoreOptions::snapshot_every`] records; the WAL covers
//! everything between checkpoints, so a crash mid-checkpoint loses
//! nothing either.
//!
//! **Recovery** ([`Store::recover`]) is read-only and idempotent:
//! load the newest snapshot that passes its CRC (falling back to
//! older ones when the newest is corrupt), then replay the WAL tail
//! in sequence order. A torn or bit-flipped record — and everything
//! after it — is discarded, never partially applied. The returned
//! [`Recovery`] carries an [`AttachPlan`] describing the cleanup
//! (truncate the torn tail, delete unusable files) that
//! [`crate::context::TescContext::with_durability`] applies when it
//! re-opens the directory for writing.

pub mod codec;
pub mod crc;
pub mod failpoint;
pub mod snapshot;
pub mod wal;

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use tesc_events::{EventId, EventStore};
use tesc_graph::CsrGraph;

use snapshot::{decode_snapshot, encode_snapshot};
pub use wal::WalRecord;
use wal::{
    parse_segment_file_name, scan_segment, segment_file_name, SegmentScan, WalWriter,
    WAL_HEADER_LEN,
};

/// Failure modes of opening, recovering or writing a [`Store`].
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error, stringified.
        message: String,
    },
    /// Snapshot files exist but none decodes cleanly — with the base
    /// image gone the WAL alone cannot reconstruct the state.
    NoValidSnapshot {
        /// How many snapshot files were tried.
        tried: usize,
    },
    /// The directory holds state for a different context than the one
    /// attaching to it (version or fingerprint disagreement).
    StateMismatch {
        /// Version recovered from disk.
        disk_version: u64,
        /// Version of the attaching context.
        ctx_version: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, message } => {
                write!(f, "persistence I/O error on {}: {message}", path.display())
            }
            PersistError::NoValidSnapshot { tried } => {
                write!(f, "no valid snapshot among {tried} candidate file(s)")
            }
            PersistError::StateMismatch {
                disk_version,
                ctx_version,
            } => write!(
                f,
                "data directory holds version {disk_version} of a different context \
                 (attaching context is at version {ctx_version})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(path: &Path, e: impl std::fmt::Display) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Tuning knobs of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Checkpoint (snapshot + WAL rotation) after this many WAL
    /// records. Lower = faster recovery, more snapshot I/O.
    pub snapshot_every: u64,
    /// Fsync every WAL append and snapshot before acknowledging.
    /// Turning this off trades the crash-durability guarantee for
    /// throughput (data still survives clean restarts).
    pub fsync: bool,
    /// Snapshots retained after a checkpoint (≥ 1). Keeping more than
    /// one lets recovery fall back past a corrupted newest snapshot.
    pub keep_snapshots: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            snapshot_every: 1024,
            fsync: true,
            keep_snapshots: 2,
        }
    }
}

/// File name of the snapshot at `version`.
pub fn snapshot_file_name(version: u64) -> String {
    format!("snapshot-{version:016x}.tsnap")
}

/// Parse a `snapshot-<hex>.tsnap` file name back into its version.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".tsnap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The segment to keep appending to after recovery, truncated to its
/// clean record prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSegment {
    /// Segment file path.
    pub path: PathBuf,
    /// Byte length of the usable prefix (everything past it is torn).
    pub clean_len: u64,
    /// Whole records within that prefix.
    pub records: u64,
}

/// Cleanup a recovery determined to be necessary. [`Store::recover`]
/// only *computes* the plan; attaching applies it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttachPlan {
    /// Files that are corrupt or unreachable past a corruption point.
    pub delete: Vec<PathBuf>,
    /// The WAL segment to reopen for appends (`None`: start a fresh
    /// segment at the recovered version).
    pub active: Option<ActiveSegment>,
}

/// The state reconstructed by [`Store::recover`].
#[derive(Debug)]
pub struct Recovery {
    /// The recovered context version.
    pub version: u64,
    /// Version of the snapshot the replay started from.
    pub snapshot_version: u64,
    /// The recovered graph.
    pub graph: CsrGraph,
    /// The recovered event store.
    pub events: EventStore,
    /// Snapshot files that failed validation and were skipped over.
    pub snapshots_skipped: usize,
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Cleanup to apply when re-opening the directory for writing.
    pub plan: AttachPlan,
}

/// Handle on a persistence directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    options: StoreOptions,
}

impl Store {
    /// Open (creating if needed) the data directory at `dir`.
    pub fn open(dir: &Path, options: StoreOptions) -> Result<Self, PersistError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(Store {
            dir: dir.to_path_buf(),
            options,
        })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    fn list(
        &self,
        parse: impl Fn(&str) -> Option<u64>,
    ) -> Result<Vec<(u64, PathBuf)>, PersistError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            if let Some(v) = entry.file_name().to_str().and_then(&parse) {
                out.push((v, entry.path()));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Snapshot files as `(version, path)`, ascending by version.
    pub fn list_snapshots(&self) -> Result<Vec<(u64, PathBuf)>, PersistError> {
        self.list(parse_snapshot_file_name)
    }

    /// WAL segment files as `(base_version, path)`, ascending by base.
    pub fn list_segments(&self) -> Result<Vec<(u64, PathBuf)>, PersistError> {
        self.list(parse_segment_file_name)
    }

    /// Write the snapshot for `version` atomically: encode to a temp
    /// file, fsync it, rename into place, fsync the directory. A crash
    /// at any point leaves either no snapshot or a complete one.
    pub fn write_snapshot(
        &self,
        version: u64,
        graph: &CsrGraph,
        events: &EventStore,
    ) -> Result<PathBuf, PersistError> {
        let bytes = encode_snapshot(version, graph, events);
        let final_path = self.dir.join(snapshot_file_name(version));
        let tmp_path = self
            .dir
            .join(format!("{}.tmp", snapshot_file_name(version)));
        {
            let mut f = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
            f.write_all(&bytes).map_err(|e| io_err(&tmp_path, e))?;
            if self.options.fsync {
                f.sync_all().map_err(|e| io_err(&tmp_path, e))?;
            }
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;
        if self.options.fsync {
            self.sync_dir()?;
        }
        Ok(final_path)
    }

    fn sync_dir(&self) -> Result<(), PersistError> {
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err(&self.dir, e))
    }

    /// Reconstruct the latest recoverable state: newest valid snapshot
    /// plus the clean WAL tail. Read-only and idempotent — running it
    /// twice (or after the [`AttachPlan`] was applied) yields the same
    /// state. `Ok(None)` means the directory holds no data at all.
    pub fn recover(&self) -> Result<Option<Recovery>, PersistError> {
        let snaps = self.list_snapshots()?;
        let segs = self.list_segments()?;
        if snaps.is_empty() && segs.is_empty() {
            return Ok(None);
        }

        // Newest snapshot that decodes cleanly wins; corrupt ones are
        // skipped (and scheduled for deletion) in favor of older
        // fallbacks, which the retained WAL segments still cover.
        let mut delete = Vec::new();
        let mut snapshots_skipped = 0usize;
        let mut chosen = None;
        for (v, path) in snaps.iter().rev() {
            let decoded = fs::read(path)
                .ok()
                .and_then(|b| decode_snapshot(&b).ok())
                .filter(|(ver, _, _)| ver == v);
            match decoded {
                Some((ver, g, e)) => {
                    chosen = Some((ver, g, e));
                    break;
                }
                None => {
                    snapshots_skipped += 1;
                    delete.push(path.clone());
                }
            }
        }
        let Some((snapshot_version, mut graph, mut events)) = chosen else {
            return Err(PersistError::NoValidSnapshot { tried: snaps.len() });
        };

        let mut version = snapshot_version;
        let mut records_replayed = 0u64;
        let mut active: Option<ActiveSegment> = None;
        let mut stopped = false;
        for (i, (base, path)) in segs.iter().enumerate() {
            if stopped {
                // Past a corruption point nothing later is applicable:
                // its sequences would leave a gap.
                delete.push(path.clone());
                continue;
            }
            let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
            let scan = match scan_segment(&bytes) {
                Ok(scan) if scan.base_version == *base => scan,
                // Unusable header (or one disagreeing with the file
                // name): if the next segment's base shows this one is
                // fully covered by the snapshot, skip it; otherwise
                // records are unreachable and replay must stop.
                _ => {
                    delete.push(path.clone());
                    match segs.get(i + 1) {
                        Some((next_base, _)) if *next_base <= version => continue,
                        _ => {
                            stopped = true;
                            continue;
                        }
                    }
                }
            };
            let mut kept = scan.records.len() as u64;
            let mut clean_len = scan.clean_len;
            for (j, (seq, rec)) in scan.records.iter().enumerate() {
                if *seq <= version {
                    continue; // already in the snapshot
                }
                if *seq != version + 1 || apply_record(rec, &mut graph, &mut events).is_err() {
                    // A sequence gap or an inapplicable record: the
                    // segment is trustworthy only up to the previous
                    // record.
                    kept = j as u64;
                    clean_len = if j == 0 {
                        WAL_HEADER_LEN as u64
                    } else {
                        scan.ends[j - 1]
                    };
                    stopped = true;
                    break;
                }
                version += 1;
                records_replayed += 1;
            }
            if *base > version {
                // A segment starting beyond the recovered version can
                // never be appended to consistently — only possible in
                // a tampered directory; drop it.
                delete.push(path.clone());
                stopped = true;
                continue;
            }
            active = Some(ActiveSegment {
                path: path.clone(),
                clean_len,
                records: kept,
            });
        }
        Ok(Some(Recovery {
            version,
            snapshot_version,
            graph,
            events,
            snapshots_skipped,
            records_replayed,
            plan: AttachPlan { delete, active },
        }))
    }

    /// Delete snapshots beyond the [`StoreOptions::keep_snapshots`]
    /// newest and WAL segments fully covered by the oldest snapshot
    /// kept — i.e. segments recovery could never need again, even
    /// when falling back past a corrupt newest snapshot.
    pub fn prune(&self) -> Result<(), PersistError> {
        let snaps = self.list_snapshots()?;
        let keep = self.options.keep_snapshots.max(1);
        if snaps.len() <= keep {
            return Ok(());
        }
        let oldest_kept = snaps[snaps.len() - keep].0;
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path).map_err(|e| io_err(path, e))?;
        }
        let segs = self.list_segments()?;
        for i in 0..segs.len() {
            // Segment i spans versions (base_i, base_{i+1}]; it is
            // dead once that whole span is at or below the oldest
            // snapshot any recovery could start from.
            match segs.get(i + 1) {
                Some((next_base, _)) if *next_base <= oldest_kept => {
                    fs::remove_file(&segs[i].1).map_err(|e| io_err(&segs[i].1, e))?;
                }
                _ => break,
            }
        }
        if self.options.fsync {
            self.sync_dir()?;
        }
        Ok(())
    }
}

/// Replay one WAL record onto `(graph, events)`. Errors mean the
/// record cannot apply to this state (a corruption symptom): recovery
/// stops cleanly rather than guessing.
fn apply_record(
    rec: &WalRecord,
    graph: &mut CsrGraph,
    events: &mut EventStore,
) -> Result<(), String> {
    let check_nodes = |nodes: &[u32], n: usize| -> Result<(), String> {
        match nodes.iter().find(|&&v| v as usize >= n) {
            Some(v) => Err(format!("node {v} out of range for {n} nodes")),
            None => Ok(()),
        }
    };
    match rec {
        WalRecord::AddEdges { edges } => {
            graph.check_edges(edges).map_err(|e| e.to_string())?;
            *graph = graph.with_edges(edges);
        }
        WalRecord::AddEvent { name, nodes } => {
            check_nodes(nodes, graph.num_nodes())?;
            events
                .try_add_event(name.clone(), nodes.clone())
                .map_err(|e| e.to_string())?;
        }
        WalRecord::AddOccurrences { event, nodes } => {
            check_nodes(nodes, graph.num_nodes())?;
            events
                .add_occurrences(EventId(*event), nodes)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// The live durability sink a writing [`crate::context::TescContext`]
/// carries: the store, the active WAL segment, and checkpoint
/// bookkeeping. All calls happen under the context's writer lock.
#[derive(Debug)]
pub struct Durability {
    store: Store,
    writer: WalWriter,
    records_since_checkpoint: u64,
    last_snapshot_version: u64,
}

impl Durability {
    /// Wire a store to a context at `version` with state
    /// `(graph, events)`, applying `recovery`'s cleanup plan. With no
    /// prior recovery (a fresh directory) the initial snapshot is
    /// written immediately, so the WAL always has a base image to
    /// replay onto.
    pub fn attach(
        store: Store,
        recovery: Option<&Recovery>,
        version: u64,
        graph: &CsrGraph,
        events: &EventStore,
    ) -> Result<Self, PersistError> {
        let fsync = store.options.fsync;
        match recovery {
            None => {
                store.write_snapshot(version, graph, events)?;
                let path = store.dir.join(segment_file_name(version));
                let writer =
                    WalWriter::create(&path, version, fsync).map_err(|e| io_err(&path, e))?;
                if fsync {
                    store.sync_dir()?;
                }
                Ok(Durability {
                    store,
                    writer,
                    records_since_checkpoint: 0,
                    last_snapshot_version: version,
                })
            }
            Some(rec) => {
                for path in &rec.plan.delete {
                    match fs::remove_file(path) {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                        Err(e) => return Err(io_err(path, e)),
                    }
                }
                let writer = match &rec.plan.active {
                    Some(a) => WalWriter::reopen(&a.path, a.clean_len, a.records, fsync)
                        .map_err(|e| io_err(&a.path, e))?,
                    None => {
                        let path = store.dir.join(segment_file_name(version));
                        WalWriter::create(&path, version, fsync).map_err(|e| io_err(&path, e))?
                    }
                };
                if fsync {
                    store.sync_dir()?;
                }
                Ok(Durability {
                    store,
                    writer,
                    records_since_checkpoint: version - rec.snapshot_version,
                    last_snapshot_version: rec.snapshot_version,
                })
            }
        }
    }

    /// Append (and fsync) the record producing version `seq`. The
    /// caller publishes that version only after this returns Ok.
    pub fn log(&mut self, seq: u64, record: &WalRecord) -> Result<(), PersistError> {
        self.writer
            .append(seq, record)
            .map_err(|e| io_err(self.writer.path(), e))?;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    /// Checkpoint now: snapshot `version`, rotate to a fresh segment,
    /// prune dead files.
    pub fn checkpoint(
        &mut self,
        version: u64,
        graph: &CsrGraph,
        events: &EventStore,
    ) -> Result<(), PersistError> {
        self.store.write_snapshot(version, graph, events)?;
        let path = self.store.dir.join(segment_file_name(version));
        self.writer = WalWriter::create(&path, version, self.store.options.fsync)
            .map_err(|e| io_err(&path, e))?;
        self.records_since_checkpoint = 0;
        self.last_snapshot_version = version;
        self.store.prune()
    }

    /// Checkpoint if [`StoreOptions::snapshot_every`] records have
    /// accumulated. Best-effort: the WAL already holds everything, so
    /// a failed checkpoint costs recovery time, not data — it is
    /// reported on stderr and retried after the next record.
    pub fn maybe_checkpoint(&mut self, version: u64, graph: &CsrGraph, events: &EventStore) {
        if self.records_since_checkpoint < self.store.options.snapshot_every {
            return;
        }
        if let Err(e) = self.checkpoint(version, graph, events) {
            eprintln!("tesc: checkpoint at version {version} failed (will retry): {e}");
        }
    }

    /// WAL records appended since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Version of the most recent snapshot on disk.
    pub fn last_snapshot_version(&self) -> u64 {
        self.last_snapshot_version
    }

    /// The managed data directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }
}

// Re-exported at the module root for callers: `tesc::persist::{...}`.
pub use codec::DecodeError;
pub use failpoint::{corrupt_file, FailpointWriter, Fault};

/// Scan one WAL segment file on disk (test/tool convenience).
pub fn scan_segment_file(path: &Path) -> Result<SegmentScan, PersistError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    scan_segment(&bytes).map_err(|e| io_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::generators::grid;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tesc-persist-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state() -> (CsrGraph, EventStore) {
        let graph = grid(5, 5);
        let mut events = EventStore::new();
        events.add_event("a", vec![0, 6, 12]);
        events.add_event("b", vec![3, 4]);
        (graph, events)
    }

    #[test]
    fn fresh_directory_recovers_to_none() {
        let dir = tmp_dir("fresh");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert!(store.recover().unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_then_wal_tail_recovers() {
        let dir = tmp_dir("tail");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (graph, events) = sample_state();
        store.write_snapshot(1, &graph, &events).unwrap();
        let mut w = WalWriter::create(&dir.join(segment_file_name(1)), 1, true).unwrap();
        w.append(
            2,
            &WalRecord::AddEdges {
                edges: vec![(0, 24)],
            },
        )
        .unwrap();
        w.append(
            3,
            &WalRecord::AddOccurrences {
                event: 1,
                nodes: vec![9],
            },
        )
        .unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.version, 3);
        assert_eq!(rec.snapshot_version, 1);
        assert_eq!(rec.records_replayed, 2);
        assert!(rec.graph.has_edge(0, 24));
        assert!(rec.events.nodes(EventId(1)).contains(&9));
        assert!(rec.plan.delete.is_empty());
        assert_eq!(rec.plan.active.as_ref().unwrap().records, 2);
        // Idempotent: a second recovery sees the identical state.
        let rec2 = store.recover().unwrap().unwrap();
        assert_eq!(rec2.version, 3);
        assert_eq!(rec2.graph.fingerprint(), rec.graph.fingerprint());
        assert_eq!(rec2.events.fingerprint(), rec.events.fingerprint());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (graph, events) = sample_state();
        store.write_snapshot(1, &graph, &events).unwrap();
        // WAL 1 → versions 2; checkpoint at 2; newest snapshot corrupt.
        let mut w = WalWriter::create(&dir.join(segment_file_name(1)), 1, true).unwrap();
        w.append(
            2,
            &WalRecord::AddEdges {
                edges: vec![(0, 24)],
            },
        )
        .unwrap();
        let graph2 = graph.with_edges(&[(0, 24)]);
        store.write_snapshot(2, &graph2, &events).unwrap();
        let _w2 = WalWriter::create(&dir.join(segment_file_name(2)), 2, true).unwrap();
        corrupt_file(&dir.join(snapshot_file_name(2)), Fault::BitFlip(40, 0x04)).unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.snapshot_version, 1, "fell back past the corrupt one");
        assert_eq!(rec.snapshots_skipped, 1);
        assert_eq!(rec.version, 2, "longer replay reaches the same state");
        assert_eq!(rec.graph.fingerprint(), graph2.fingerprint());
        assert!(rec.plan.delete.contains(&dir.join(snapshot_file_name(2))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_is_a_hard_error() {
        let dir = tmp_dir("nosnap");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (graph, events) = sample_state();
        store.write_snapshot(1, &graph, &events).unwrap();
        corrupt_file(&dir.join(snapshot_file_name(1)), Fault::CrashAt(20)).unwrap();
        assert!(matches!(
            store.recover(),
            Err(PersistError::NoValidSnapshot { tried: 1 })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_stops_replay_cleanly() {
        let dir = tmp_dir("gap");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (graph, events) = sample_state();
        store.write_snapshot(1, &graph, &events).unwrap();
        let mut w = WalWriter::create(&dir.join(segment_file_name(1)), 1, true).unwrap();
        w.append(
            2,
            &WalRecord::AddEdges {
                edges: vec![(0, 24)],
            },
        )
        .unwrap();
        // Gap: 3 is missing.
        w.append(
            4,
            &WalRecord::AddEdges {
                edges: vec![(0, 12)],
            },
        )
        .unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.version, 2, "stops before the gap");
        assert!(rec.graph.has_edge(0, 24));
        assert!(!rec.graph.has_edge(0, 12), "post-gap record not applied");
        let active = rec.plan.active.unwrap();
        assert_eq!(active.records, 1, "truncates back to the clean prefix");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_fallback_coverage() {
        let dir = tmp_dir("prune");
        let store = Store::open(
            &dir,
            StoreOptions {
                keep_snapshots: 2,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let (mut graph, events) = sample_state();
        // Simulate three checkpoints at versions 1, 5, 9 with segments
        // wal-1 (2..=5), wal-5 (6..=9), wal-9 (active).
        store.write_snapshot(1, &graph, &events).unwrap();
        let spans = [(1u64, 2u64..=5), (5, 6..=9)];
        for (base, seqs) in spans {
            let mut w = WalWriter::create(&dir.join(segment_file_name(base)), base, true).unwrap();
            for seq in seqs {
                let edge = (0u32, (seq + 1) as u32);
                graph = graph.with_edges(&[edge]);
                w.append(seq, &WalRecord::AddEdges { edges: vec![edge] })
                    .unwrap();
            }
            let v = w.records() + base;
            store.write_snapshot(v, &graph, &events).unwrap();
        }
        let _active = WalWriter::create(&dir.join(segment_file_name(9)), 9, true).unwrap();
        store.prune().unwrap();
        let snaps: Vec<u64> = store
            .list_snapshots()
            .unwrap()
            .iter()
            .map(|s| s.0)
            .collect();
        assert_eq!(snaps, vec![5, 9], "keeps the 2 newest snapshots");
        let segs: Vec<u64> = store.list_segments().unwrap().iter().map(|s| s.0).collect();
        assert_eq!(
            segs,
            vec![5, 9],
            "wal-1 is covered by snapshot 5; wal-5 still needed as fallback replay"
        );
        // Recovery still works, and still works if snapshot 9 dies.
        assert_eq!(store.recover().unwrap().unwrap().version, 9);
        corrupt_file(&dir.join(snapshot_file_name(9)), Fault::TearAt(10)).unwrap();
        let rec = store.recover().unwrap().unwrap();
        assert_eq!(rec.version, 9);
        assert_eq!(rec.graph.fingerprint(), graph.fingerprint());
        fs::remove_dir_all(&dir).ok();
    }
}
