//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The canonical implementation lives in [`tesc_graph::crc`] so the
//! `.tgraph` graph container and the persistence frames (snapshot,
//! WAL) share one checksum dialect; this module re-exports it under
//! the historical `tesc::persist::crc` path.

pub use tesc_graph::crc::crc32;
