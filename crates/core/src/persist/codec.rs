//! Little-endian byte-frame primitives shared by the snapshot and WAL
//! codecs.
//!
//! The canonical implementation lives in [`tesc_graph::codec`] so the
//! `.tgraph` graph container and the persistence frames share one
//! binary dialect (bounds-checked [`Cursor`], structured
//! [`DecodeError`], allocation-guarded [`Cursor::len_prefix`]); this
//! module re-exports it under the historical `tesc::persist::codec`
//! path, preserving type identity across the two crates.

pub use tesc_graph::codec::{put_u32, put_u64, Cursor, DecodeError};
