//! The ingestion write-ahead log.
//!
//! A WAL segment records the writer-path mutation stream — edge
//! batches, new events, occurrence appends — so a crash between
//! snapshots loses nothing that was acknowledged. The durability
//! contract is *log before publish*: a record is appended and fsync'd
//! before the corresponding context version becomes visible to
//! readers, so any version a client ever observed is recoverable.
//!
//! Segment layout (`wal-<base_version:016x>.tlog`):
//!
//! ```text
//! u8 × 8   magic "TESCWAL1"
//! u64      base version (the context version the segment starts from)
//! record*  each framed as:
//!            u32  payload length
//!            u32  CRC-32 of the payload
//!            payload:
//!              u64 seq  — the context version this record produces
//!              u8  op   — 1 AddEdges, 2 AddEvent, 3 AddOccurrences
//!              op-specific body (see [`WalRecord`])
//! ```
//!
//! A crash can tear the final record: the reader stops at the first
//! frame whose length field runs past EOF or whose CRC disagrees, and
//! reports the byte length of the clean prefix — a torn tail is an
//! expected condition, not an error.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use tesc_graph::NodeId;

use super::codec::{put_u32, put_u64, Cursor, DecodeError};
use super::crc::crc32;

/// Magic prefix of every WAL segment (8 bytes, version-suffixed).
pub const WAL_MAGIC: &[u8; 8] = b"TESCWAL1";

/// Byte length of a segment header (magic + base version).
pub const WAL_HEADER_LEN: usize = 16;

/// One logged writer-path mutation. `seq` is carried by the frame, not
/// the record: a record at sequence `s` transforms context version
/// `s − 1` into version `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An `add_edges` batch, already normalized (`u < v`, sorted,
    /// deduplicated, all novel at append time).
    AddEdges {
        /// The normalized edge batch.
        edges: Vec<(NodeId, NodeId)>,
    },
    /// An `add_event` registration.
    AddEvent {
        /// Event name (unique within the store).
        name: String,
        /// Occurrence nodes as submitted (store sorts/dedups).
        nodes: Vec<NodeId>,
    },
    /// An `add_event_occurrences` append to an existing event.
    AddOccurrences {
        /// Dense id of the target event.
        event: u32,
        /// Occurrence nodes to merge in.
        nodes: Vec<NodeId>,
    },
}

const OP_ADD_EDGES: u8 = 1;
const OP_ADD_EVENT: u8 = 2;
const OP_ADD_OCCURRENCES: u8 = 3;

/// Encode one record frame (length + CRC + payload) for sequence `seq`.
pub fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, seq);
    match record {
        WalRecord::AddEdges { edges } => {
            payload.push(OP_ADD_EDGES);
            put_u64(&mut payload, edges.len() as u64);
            for &(u, v) in edges {
                put_u32(&mut payload, u);
                put_u32(&mut payload, v);
            }
        }
        WalRecord::AddEvent { name, nodes } => {
            payload.push(OP_ADD_EVENT);
            put_u64(&mut payload, name.len() as u64);
            payload.extend_from_slice(name.as_bytes());
            put_u64(&mut payload, nodes.len() as u64);
            for &n in nodes {
                put_u32(&mut payload, n);
            }
        }
        WalRecord::AddOccurrences { event, nodes } => {
            payload.push(OP_ADD_OCCURRENCES);
            put_u32(&mut payload, *event);
            put_u64(&mut payload, nodes.len() as u64);
            for &n in nodes {
                put_u32(&mut payload, n);
            }
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode one record payload (the bytes after the length/CRC frame).
pub fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), DecodeError> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let op = c.u8()?;
    let record = match op {
        OP_ADD_EDGES => {
            let n = c.len_prefix(8)?;
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let u = c.u32()?;
                let v = c.u32()?;
                if u >= v {
                    return Err(DecodeError {
                        offset: c.pos(),
                        message: "edge endpoints out of order".into(),
                    });
                }
                edges.push((u, v));
            }
            WalRecord::AddEdges { edges }
        }
        OP_ADD_EVENT => {
            let name_len = c.len_prefix(1)?;
            let name = std::str::from_utf8(c.take(name_len)?)
                .map_err(|_| DecodeError {
                    offset: c.pos(),
                    message: "event name is not UTF-8".into(),
                })?
                .to_string();
            let n = c.len_prefix(4)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.u32()?);
            }
            WalRecord::AddEvent { name, nodes }
        }
        OP_ADD_OCCURRENCES => {
            let event = c.u32()?;
            let n = c.len_prefix(4)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(c.u32()?);
            }
            WalRecord::AddOccurrences { event, nodes }
        }
        other => {
            return Err(DecodeError {
                offset: c.pos(),
                message: format!("unknown WAL opcode {other}"),
            })
        }
    };
    if !c.is_empty() {
        return Err(DecodeError {
            offset: c.pos(),
            message: "trailing bytes in WAL record".into(),
        });
    }
    Ok((seq, record))
}

/// File name of the segment starting at `base_version`.
pub fn segment_file_name(base_version: u64) -> String {
    format!("wal-{base_version:016x}.tlog")
}

/// Parse a `wal-<hex>.tlog` file name back into its base version.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".tlog")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Context version the segment starts from.
    pub base_version: u64,
    /// Sequenced records of the clean prefix, in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte offset at which record `i` ends — so truncating the file
    /// to `ends[i]` keeps exactly records `0..=i`.
    pub ends: Vec<u64>,
    /// Byte length of the clean prefix (header + intact frames). Bytes
    /// past this point are a torn tail and can be truncated away.
    pub clean_len: u64,
    /// Whether bytes past the clean prefix were present (torn tail,
    /// CRC mismatch, or undecodable payload).
    pub torn: bool,
}

/// Scan a segment image. Fails only if the *header* is unusable; torn
/// or corrupt record tails stop the scan cleanly instead.
pub fn scan_segment(bytes: &[u8]) -> Result<SegmentScan, DecodeError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(DecodeError {
            offset: bytes.len(),
            message: "segment shorter than its header".into(),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DecodeError {
            offset: 0,
            message: "bad WAL magic".into(),
        });
    }
    let base_version = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = false;
    while pos < bytes.len() {
        let Some(frame_head) = bytes.get(pos..pos + 8) else {
            torn = true;
            break;
        };
        let len = u32::from_le_bytes(frame_head[..4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(frame_head[4..8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            torn = true;
            break;
        };
        if crc32(payload) != stored_crc {
            torn = true;
            break;
        }
        match decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                // CRC passed but the payload is malformed — treat it
                // like any other corrupt tail rather than trusting it.
                torn = true;
                break;
            }
        }
        pos += 8 + len;
        ends.push(pos as u64);
    }
    Ok(SegmentScan {
        base_version,
        records,
        ends,
        clean_len: pos as u64,
        torn,
    })
}

/// Append handle on the active WAL segment.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: bool,
    records: u64,
    bytes: u64,
}

impl WalWriter {
    /// Create a fresh segment at `path` starting from `base_version`,
    /// truncating anything already there. The header is written and
    /// (if `fsync`) synced before returning.
    pub fn create(path: &Path, base_version: u64, fsync: bool) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        put_u64(&mut header, base_version);
        file.write_all(&header)?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
            records: 0,
            bytes: WAL_HEADER_LEN as u64,
        })
    }

    /// Re-open an existing segment for appends after `clean_len` bytes
    /// (torn tail beyond it is truncated away), counting `records`
    /// already present.
    pub fn reopen(path: &Path, clean_len: u64, records: u64, fsync: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(clean_len)?;
        if fsync {
            file.sync_data()?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
            records,
            bytes: clean_len,
        })
    }

    /// Append one record and flush it to stable storage (when `fsync`
    /// is on). Returns only after the bytes are durable — callers
    /// publish the new version strictly after this returns.
    pub fn append(&mut self, seq: u64, record: &WalRecord) -> std::io::Result<()> {
        use std::io::Seek;
        let frame = encode_record(seq, record);
        self.file.seek(std::io::SeekFrom::Start(self.bytes))?;
        self.file.write_all(&frame)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Records appended to this segment (including pre-existing ones
    /// counted at [`WalWriter::reopen`]).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current segment length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(u64, WalRecord)> {
        vec![
            (
                2,
                WalRecord::AddEdges {
                    edges: vec![(0, 1), (1, 4), (2, 3)],
                },
            ),
            (
                3,
                WalRecord::AddEvent {
                    name: "db".into(),
                    nodes: vec![4, 1, 1],
                },
            ),
            (
                4,
                WalRecord::AddOccurrences {
                    event: 0,
                    nodes: vec![2],
                },
            ),
        ]
    }

    fn sample_segment(base: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        put_u64(&mut bytes, base);
        for (seq, rec) in sample_records() {
            bytes.extend_from_slice(&encode_record(seq, &rec));
        }
        bytes
    }

    #[test]
    fn records_round_trip() {
        for (seq, rec) in sample_records() {
            let frame = encode_record(seq, &rec);
            let payload = &frame[8..];
            assert_eq!(
                crc32(payload),
                u32::from_le_bytes(frame[4..8].try_into().unwrap())
            );
            let (seq2, rec2) = decode_payload(payload).unwrap();
            assert_eq!(seq2, seq);
            assert_eq!(rec2, rec);
        }
    }

    #[test]
    fn scan_reads_a_clean_segment() {
        let bytes = sample_segment(1);
        let scan = scan_segment(&bytes).unwrap();
        assert_eq!(scan.base_version, 1);
        assert_eq!(scan.records, sample_records());
        assert_eq!(scan.clean_len, bytes.len() as u64);
        assert!(!scan.torn);
    }

    #[test]
    fn every_truncation_yields_a_clean_record_prefix() {
        let bytes = sample_segment(1);
        let full = sample_records();
        // Byte offsets at which each frame ends.
        let mut frame_ends = vec![WAL_HEADER_LEN];
        for (seq, rec) in &full {
            frame_ends.push(frame_ends.last().unwrap() + encode_record(*seq, rec).len());
        }
        for k in WAL_HEADER_LEN..bytes.len() {
            let scan = scan_segment(&bytes[..k]).unwrap();
            // Largest number of whole frames that fit in k bytes.
            let whole = frame_ends.iter().filter(|&&e| e <= k).count() - 1;
            assert_eq!(scan.records, full[..whole], "truncation at byte {k}");
            assert_eq!(scan.clean_len as usize, frame_ends[whole]);
            // Torn iff the cut falls inside a frame.
            assert_eq!(scan.torn, k != frame_ends[whole]);
        }
        // Below the header it is a hard error.
        assert!(scan_segment(&bytes[..WAL_HEADER_LEN - 1]).is_err());
    }

    #[test]
    fn bit_flips_never_corrupt_decoded_records() {
        let bytes = sample_segment(1);
        let full = sample_records();
        for k in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[k] ^= 0x40;
            match scan_segment(&flipped) {
                Ok(scan) => {
                    // Whatever prefix survives must be an exact prefix
                    // of the true record stream — never a mutation.
                    assert!(
                        scan.records == full[..scan.records.len()],
                        "flip at byte {k} altered a decoded record"
                    );
                    assert!(scan.torn || scan.records.len() == full.len());
                }
                Err(_) => assert!(k < WAL_HEADER_LEN, "only header flips may hard-fail"),
            }
        }
    }

    #[test]
    fn writer_appends_are_scannable() {
        let dir = std::env::temp_dir().join(format!(
            "tesc-wal-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_file_name(5));
        let mut w = WalWriter::create(&path, 5, true).unwrap();
        for (seq, rec) in sample_records() {
            w.append(seq + 4, &rec).unwrap();
        }
        assert_eq!(w.records(), 3);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(w.bytes(), bytes.len() as u64);
        let scan = scan_segment(&bytes).unwrap();
        assert_eq!(scan.base_version, 5);
        assert_eq!(scan.records.len(), 3);
        assert!(!scan.torn);

        // Reopen after a simulated torn tail: chop 3 bytes, reopen at
        // the clean prefix, append again.
        let mut chopped = bytes.clone();
        chopped.truncate(bytes.len() - 3);
        std::fs::write(&path, &chopped).unwrap();
        let scan = scan_segment(&chopped).unwrap();
        assert!(scan.torn);
        let mut w =
            WalWriter::reopen(&path, scan.clean_len, scan.records.len() as u64, true).unwrap();
        w.append(
            9,
            &WalRecord::AddEdges {
                edges: vec![(7, 9)],
            },
        )
        .unwrap();
        let scan = scan_segment(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(!scan.torn);
        assert_eq!(
            scan.records.last().unwrap(),
            &(
                9,
                WalRecord::AddEdges {
                    edges: vec![(7, 9)]
                }
            )
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(
            parse_segment_file_name(&segment_file_name(0x1234)),
            Some(0x1234)
        );
        assert_eq!(parse_segment_file_name("wal-zz.tlog"), None);
        assert_eq!(parse_segment_file_name("snapshot-0.tsnap"), None);
    }
}
