//! Fault injection for crash-safety tests.
//!
//! [`FailpointWriter`] wraps any [`Write`] sink and simulates the
//! storage failure modes the recovery path must survive:
//!
//! - **CrashAt(k)** — the process dies after byte `k`: every byte from
//!   offset `k` on is silently dropped (a truncated tail).
//! - **BitFlip(k)** — byte `k` reaches the medium with one bit
//!   flipped (latent corruption a CRC must catch).
//! - **TearAt(k)** — the sector write at offset `k` tears: bytes from
//!   `k` up to the next 512-byte boundary are replaced with zeroes,
//!   bytes after that boundary are dropped.
//!
//! [`corrupt_file`] applies the same faults to a file already on disk,
//! which is how the tests crash a copied data directory "at byte k"
//! without threading the writer through the real persistence stack.

use std::io::Write;
use std::path::Path;

/// A storage fault to inject, addressed by byte offset in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop every byte at offset ≥ `k` (crash / truncation).
    CrashAt(u64),
    /// XOR byte `k` with `mask` (latent bit corruption).
    BitFlip(u64, u8),
    /// Zero bytes from `k` to the next 512-byte boundary, drop the
    /// rest (torn sector write).
    TearAt(u64),
}

impl Fault {
    /// Apply this fault to an in-memory image, returning the bytes
    /// that "reached the disk".
    pub fn apply(self, bytes: &[u8]) -> Vec<u8> {
        match self {
            Fault::CrashAt(k) => {
                let k = (k as usize).min(bytes.len());
                bytes[..k].to_vec()
            }
            Fault::BitFlip(k, mask) => {
                let mut out = bytes.to_vec();
                if let Some(b) = out.get_mut(k as usize) {
                    *b ^= mask;
                }
                out
            }
            Fault::TearAt(k) => {
                let k = (k as usize).min(bytes.len());
                let sector_end = ((k / 512) + 1) * 512;
                let end = sector_end.min(bytes.len());
                let mut out = bytes[..end].to_vec();
                for b in &mut out[k..end] {
                    *b = 0;
                }
                out
            }
        }
    }
}

/// A [`Write`] adapter that injects one [`Fault`] into the byte stream
/// passing through it. Writes after a `CrashAt`/`TearAt` point are
/// accepted and discarded — from the caller's view the process keeps
/// "running" until the test kills it, exactly like a real crash where
/// buffered writes never hit the platter.
#[derive(Debug)]
pub struct FailpointWriter<W: Write> {
    inner: W,
    fault: Fault,
    written: u64,
}

impl<W: Write> FailpointWriter<W> {
    /// Wrap `inner`, injecting `fault` at its byte offset.
    pub fn new(inner: W, fault: Fault) -> Self {
        FailpointWriter {
            inner,
            fault,
            written: 0,
        }
    }

    /// Total bytes the caller has attempted to write.
    pub fn offered(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let start = self.written;
        let end = start + buf.len() as u64;
        // Compute what this chunk looks like after the fault.
        let surviving: Vec<u8> = match self.fault {
            Fault::CrashAt(k) => {
                let keep = k.saturating_sub(start).min(buf.len() as u64) as usize;
                buf[..keep].to_vec()
            }
            Fault::BitFlip(k, mask) => {
                let mut out = buf.to_vec();
                if k >= start && k < end {
                    out[(k - start) as usize] ^= mask;
                }
                out
            }
            Fault::TearAt(k) => {
                let sector_end = ((k / 512) + 1) * 512;
                let mut out = Vec::with_capacity(buf.len());
                for (i, &b) in buf.iter().enumerate() {
                    let off = start + i as u64;
                    if off < k {
                        out.push(b);
                    } else if off < sector_end {
                        out.push(0);
                    }
                }
                out
            }
        };
        self.inner.write_all(&surviving)?;
        self.written = end;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Apply `fault` to the file at `path` in place.
pub fn corrupt_file(path: &Path, fault: Fault) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    std::fs::write(path, fault.apply(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_through(fault: Fault, chunks: &[&[u8]]) -> Vec<u8> {
        let mut w = FailpointWriter::new(Vec::new(), fault);
        for c in chunks {
            w.write_all(c).unwrap();
        }
        w.flush().unwrap();
        w.into_inner()
    }

    #[test]
    fn streaming_matches_whole_image_semantics() {
        let image: Vec<u8> = (0u8..=255).cycle().take(1500).collect();
        let chunkings: &[&[usize]] = &[&[1500], &[700, 800], &[1, 499, 1000]];
        for fault in [
            Fault::CrashAt(0),
            Fault::CrashAt(700),
            Fault::CrashAt(10_000),
            Fault::BitFlip(0, 0x80),
            Fault::BitFlip(733, 0x01),
            Fault::TearAt(5),
            Fault::TearAt(600),
            Fault::TearAt(1499),
        ] {
            for sizes in chunkings {
                let mut chunks: Vec<&[u8]> = Vec::new();
                let mut pos = 0;
                for &s in *sizes {
                    chunks.push(&image[pos..pos + s]);
                    pos += s;
                }
                assert_eq!(
                    stream_through(fault, &chunks),
                    fault.apply(&image),
                    "{fault:?} with chunk sizes {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn tear_zeroes_to_sector_boundary() {
        let image = vec![0xAAu8; 1024];
        let out = Fault::TearAt(100).apply(&image);
        assert_eq!(out.len(), 512);
        assert!(out[..100].iter().all(|&b| b == 0xAA));
        assert!(out[100..].iter().all(|&b| b == 0));
    }
}
