//! Cross-pair density cache — memoized `(event, node, h)` vicinity
//! counts for batch workloads.
//!
//! A batch over a keyword-pair list usually shares events between
//! pairs (Sec. 5.3's DBLP study tests one keyword against many
//! others). Without a cache, every pair redoes the density BFS of
//! every reference node from scratch, recomputing
//! `|V_a ∩ V^h_r| / |V^h_r|` for the shared event `a` once *per
//! pair*. [`DensityCache`] memoizes the integer ingredients of Eq. 2 —
//! `(|V^h_r|, |V_e ∩ V^h_r|)` keyed by `(event, reference node, h)` —
//! so each is computed once per reference node and reused by every
//! pair that shares the event.
//!
//! **Identity is content-addressed.** An event is keyed by its
//! *normalized occurrence set* (sorted, deduplicated), wrapped in an
//! [`EventKey`] carrying a precomputed hash; two pairs naming the same
//! node set share cache entries no matter how the sets were
//! constructed. Hash collisions cannot corrupt results: key equality
//! compares the node sets themselves.
//!
//! **Bit-identity.** Cached entries are the exact integer counts the
//! uncached BFS produces, and densities are derived with the identical
//! `count as f64 / size as f64` arithmetic, so cached results are
//! bit-identical to the uncached path (asserted in
//! `tests/pipeline.rs` for every sampler).
//!
//! **Consistency.** Counts are only valid for the graph they were
//! measured on. A cache is therefore pinned to one graph's structural
//! fingerprint at construction ([`DensityCache::for_graph`]) and
//! [`TescEngine::with_density_cache`](crate::TescEngine::with_density_cache)
//! asserts the match; the versioned
//! [`TescContext`](crate::context::TescContext) creates a fresh cache
//! whenever the graph changes (stale counts can never leak across
//! graph versions) and shares the warm cache across event-only
//! versions, where every entry remains valid.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tesc_graph::{CsrGraph, NodeId};

/// Content-addressed identity of an event's occurrence set.
///
/// Construction sorts/dedups once and precomputes a hash; clones are
/// `Arc`-cheap, so a key can be shared across batch worker threads.
#[derive(Debug, Clone)]
pub struct EventKey {
    hash: u64,
    nodes: Arc<[NodeId]>,
}

impl EventKey {
    /// Key for an occurrence list (any order, duplicates allowed).
    pub fn new(nodes: &[NodeId]) -> Self {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_normalized(sorted)
    }

    /// Key for a list that is already sorted and deduplicated (the
    /// engine's normalized form) — skips the re-sort.
    pub fn from_normalized(nodes: Vec<NodeId>) -> Self {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "not normalized");
        let mut hasher = DefaultHasher::new();
        nodes.hash(&mut hasher);
        EventKey {
            hash: hasher.finish(),
            nodes: nodes.into(),
        }
    }

    /// The normalized occurrence set this key addresses.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        // Hash first (cheap reject), then the sets themselves — a
        // 64-bit collision must not alias two distinct events.
        self.hash == other.hash
            && (Arc::ptr_eq(&self.nodes, &other.nodes) || self.nodes == other.nodes)
    }
}

impl Eq for EventKey {}

impl Hash for EventKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The memoized integer ingredients of one event density (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCount {
    /// `|V^h_r|` (includes `r` itself).
    pub vicinity_size: u32,
    /// `|V_e ∩ V^h_r|` for the keyed event `e`.
    pub count: u32,
}

impl CachedCount {
    /// `s^h_e(r)` — identical arithmetic to the uncached
    /// [`DensityCounts`](crate::density::DensityCounts) accessors, so
    /// cached and uncached densities are bit-identical.
    #[inline]
    pub fn density(&self) -> f64 {
        self.count as f64 / self.vicinity_size as f64
    }
}

const SHARDS: usize = 16;

/// One shard of the memo table: `(event, node, h) → count`.
type Shard = HashMap<(EventKey, NodeId, u32), CachedCount>;

/// Thread-safe `(event, node, h) → (|V^h_r|, count)` memo table.
///
/// Sharded by reference node so concurrent batch workers rarely
/// contend; all counters are monotone atomics. See the module docs for
/// the consistency contract.
#[derive(Debug)]
pub struct DensityCache {
    shards: Vec<Mutex<Shard>>,
    /// Structural fingerprint of the graph this cache's counts were
    /// measured on — counts alone would collide under count-neutral
    /// rewirings like `tesc_graph::perturb`.
    graph_fingerprint: u64,
    bfs_invocations: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Fresh computations per event — the "density BFS once per
    /// reference node" accounting the tests assert on.
    fresh: Mutex<HashMap<EventKey, u64>>,
}

impl DensityCache {
    /// Empty cache pinned to `g`'s structure.
    pub fn for_graph(g: &CsrGraph) -> Self {
        DensityCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            graph_fingerprint: g.fingerprint(),
            bfs_invocations: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fresh: Mutex::new(HashMap::new()),
        }
    }

    /// Was this cache created for (a graph structurally identical to)
    /// `g`? Compares [`CsrGraph::fingerprint`]s, so count-neutral
    /// rewirings are caught too.
    pub fn matches_graph(&self, g: &CsrGraph) -> bool {
        self.graph_fingerprint == g.fingerprint()
    }

    #[inline]
    fn shard(&self, r: NodeId) -> &Mutex<Shard> {
        &self.shards[r as usize % SHARDS]
    }

    /// Look up the memoized count for `(event, r, h)`, recording a
    /// hit/miss.
    pub fn lookup(&self, event: &EventKey, r: NodeId, h: u32) -> Option<CachedCount> {
        let got = self
            .shard(r)
            .lock()
            .expect("density cache poisoned")
            .get(&(event.clone(), r, h))
            .copied();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Multi-event probe — the fused-pass counterpart of
    /// [`DensityCache::lookup`]: resolve `(event, r, h)` for *every*
    /// key of `events` under **one** shard-lock acquisition (all slots
    /// of one reference node live in the same shard, so the fused
    /// density executor pays one lock per node instead of one per
    /// event). `out` is cleared and receives one slot per key in
    /// order; the return value says whether every slot hit (= the BFS
    /// for `r` can be skipped entirely). Hit/miss counters advance per
    /// key, exactly like repeated `lookup` calls.
    pub fn lookup_many<'k>(
        &self,
        events: impl IntoIterator<Item = &'k EventKey>,
        r: NodeId,
        h: u32,
        out: &mut Vec<Option<CachedCount>>,
    ) -> bool {
        out.clear();
        let mut hits = 0u64;
        let mut misses = 0u64;
        {
            let shard = self.shard(r).lock().expect("density cache poisoned");
            for key in events {
                let got = shard.get(&(key.clone(), r, h)).copied();
                match got {
                    Some(_) => hits += 1,
                    None => misses += 1,
                }
                out.push(got);
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        misses == 0
    }

    /// Insert a freshly measured count. Counts the insertion against
    /// the event's fresh-compute tally only if the slot was empty
    /// (under races two workers may measure the same slot; the value
    /// is deterministic either way).
    pub fn insert(&self, event: &EventKey, r: NodeId, h: u32, value: CachedCount) {
        let prev = self
            .shard(r)
            .lock()
            .expect("density cache poisoned")
            .insert((event.clone(), r, h), value);
        if prev.is_none() {
            *self
                .fresh
                .lock()
                .expect("density cache poisoned")
                .entry(event.clone())
                .or_insert(0) += 1;
        }
    }

    /// Record one density BFS executed through the cache.
    #[inline]
    pub fn record_bfs(&self) {
        self.bfs_invocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total density BFS invocations executed through the cache — the
    /// work the cache could not avoid.
    pub fn bfs_invocations(&self) -> u64 {
        self.bfs_invocations.load(Ordering::Relaxed)
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many distinct `(node, h)` slots were freshly computed for
    /// `event` — "density BFS once per reference node" means this
    /// equals the number of distinct reference nodes the batch touched
    /// for the event.
    pub fn fresh_computes(&self, event: &EventKey) -> u64 {
        self.fresh
            .lock()
            .expect("density cache poisoned")
            .get(event)
            .copied()
            .unwrap_or(0)
    }

    /// Number of memoized `(event, node, h)` entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("density cache poisoned").len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::csr::from_edges;

    fn g() -> CsrGraph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn event_key_is_order_and_dup_insensitive() {
        let a = EventKey::new(&[3, 1, 2, 1]);
        let b = EventKey::new(&[1, 2, 3]);
        let c = EventKey::new(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.nodes(), &[1, 2, 3]);
    }

    #[test]
    fn lookup_insert_round_trip_with_counters() {
        let cache = DensityCache::for_graph(&g());
        let e = EventKey::new(&[0, 2]);
        assert_eq!(cache.lookup(&e, 1, 1), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let v = CachedCount {
            vicinity_size: 3,
            count: 2,
        };
        cache.insert(&e, 1, 1, v);
        assert_eq!(cache.lookup(&e, 1, 1), Some(v));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.fresh_computes(&e), 1);
        assert_eq!(cache.len(), 1);
        // Same node, different h → distinct slot.
        assert_eq!(cache.lookup(&e, 1, 2), None);
        // Re-inserting the same slot does not double-count freshness.
        cache.insert(&e, 1, 1, v);
        assert_eq!(cache.fresh_computes(&e), 1);
    }

    #[test]
    fn lookup_many_resolves_all_slots_in_order() {
        let cache = DensityCache::for_graph(&g());
        let (e1, e2, e3) = (
            EventKey::new(&[0]),
            EventKey::new(&[1, 2]),
            EventKey::new(&[3]),
        );
        let v1 = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        let v3 = CachedCount {
            vicinity_size: 3,
            count: 2,
        };
        cache.insert(&e1, 2, 1, v1);
        cache.insert(&e3, 2, 1, v3);
        let mut out = Vec::new();
        // Partial hit: slot order preserved, missing slot is None.
        let all = cache.lookup_many([&e1, &e2, &e3], 2, 1, &mut out);
        assert!(!all);
        assert_eq!(out, vec![Some(v1), None, Some(v3)]);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        // Full hit after the gap is filled.
        cache.insert(&e2, 2, 1, v1);
        let all = cache.lookup_many([&e1, &e2, &e3], 2, 1, &mut out);
        assert!(all, "every slot memoized ⇒ BFS skippable");
        assert_eq!(out.len(), 3);
        assert_eq!((cache.hits(), cache.misses()), (5, 1));
        // Different node: clean misses, `out` re-cleared.
        assert!(!cache.lookup_many([&e1], 0, 1, &mut out));
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn density_matches_uncached_arithmetic() {
        let v = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        assert_eq!(v.density().to_bits(), (1.0f64 / 3.0f64).to_bits());
    }

    #[test]
    fn graph_shape_pinning() {
        let cache = DensityCache::for_graph(&g());
        assert!(cache.matches_graph(&g()));
        assert!(!cache.matches_graph(&g().with_edges(&[(0, 3)])));
        // Count-neutral rewiring (same |V|, same |E|) is caught too.
        let rewired = from_edges(4, &[(0, 1), (1, 3), (2, 3)]);
        assert_eq!(rewired.num_edges(), g().num_edges());
        assert!(!cache.matches_graph(&rewired));
    }

    #[test]
    fn cache_is_sync() {
        const fn assert_sync<T: Sync + Send>() {}
        assert_sync::<DensityCache>();
        assert_sync::<EventKey>();
    }
}
