//! Cross-pair density cache — memoized `(event, node, h)` vicinity
//! counts for batch workloads.
//!
//! A batch over a keyword-pair list usually shares events between
//! pairs (Sec. 5.3's DBLP study tests one keyword against many
//! others). Without a cache, every pair redoes the density BFS of
//! every reference node from scratch, recomputing
//! `|V_a ∩ V^h_r| / |V^h_r|` for the shared event `a` once *per
//! pair*. [`DensityCache`] memoizes the integer ingredients of Eq. 2 —
//! `(|V^h_r|, |V_e ∩ V^h_r|)` keyed by `(event, reference node, h)` —
//! so each is computed once per reference node and reused by every
//! pair that shares the event.
//!
//! **Identity is content-addressed.** An event is keyed by its
//! *normalized occurrence set* (sorted, deduplicated), wrapped in an
//! [`EventKey`] carrying a precomputed hash; two pairs naming the same
//! node set share cache entries no matter how the sets were
//! constructed. Hash collisions cannot corrupt results: key equality
//! compares the node sets themselves.
//!
//! **Bit-identity.** Cached entries are the exact integer counts the
//! uncached BFS produces, and densities are derived with the identical
//! `count as f64 / size as f64` arithmetic, so cached results are
//! bit-identical to the uncached path (asserted in
//! `tests/pipeline.rs` for every sampler).
//!
//! **Consistency.** Counts are only valid for the graph they were
//! measured on. A cache is therefore pinned to one graph's structural
//! fingerprint at construction ([`DensityCache::for_graph`]) and
//! [`TescEngine::with_density_cache`](crate::TescEngine::with_density_cache)
//! asserts the match; the versioned
//! [`TescContext`](crate::context::TescContext) creates a fresh cache
//! whenever the graph changes (stale counts can never leak across
//! graph versions) and shares the warm cache across event-only
//! versions, where every entry remains valid.
//!
//! **Bounded memory.** By default the cache is append-only — correct
//! for batch runs that die with the process, a leak for a long-lived
//! server whose event stream never ends. [`DensityCache::for_graph_bounded`]
//! caps resident memory with a sharded **second-chance (CLOCK)**
//! policy: each shard keeps a FIFO ring over its entry slabs plus a
//! per-entry referenced bit set on every hit; when an insert pushes
//! the shard past its slice of the byte budget, the ring is swept —
//! recently referenced entries get a second chance (bit cleared,
//! re-queued), unreferenced ones are evicted. Eviction only ever
//! forgets *memoized work*: a later probe misses and the count is
//! re-measured by the same deterministic BFS, so results stay
//! bit-identical to the unbounded (and the uncached) path — asserted
//! in `tests/cache_eviction.rs` across kernel × relabel configs.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tesc_graph::{Adjacency, NodeId};

/// A [`ProbeGovernor`] probes unconditionally for this many
/// skip-or-BFS decisions (a *decision* = one reference node resolved
/// through a batched probe: either every needed slot hit and the BFS
/// was skipped, or the node went to BFS). After the window, the
/// measured sharing decides.
pub const PROBE_WINDOW: u64 = 64;

/// The measured-sharing bypass threshold: after [`PROBE_WINDOW`]
/// decisions of one executor pass, further *probes* stop if fewer than
/// one decision in this many skipped a BFS — below that rate the
/// lookups cost more than the skipped searches saved (the batch-bench
/// regression this mechanism fixes). Inserts continue regardless, so a
/// cold cache warms at full speed and the next pass re-evaluates from
/// scratch; results are identical either way — the bypass is purely a
/// cost switch.
const BYPASS_SKIP_DENOM: u64 = 4;

/// Call-scoped measured-sharing governor for one cached density pass.
///
/// Every cached executor creates one per pass and consults
/// [`ProbeGovernor::engaged`] before probing each reference node: the
/// first [`PROBE_WINDOW`] nodes always probe, and beyond the window
/// probing continues only while at least a quarter of the observed
/// decisions actually skipped their BFS. A bypassed pass still
/// *inserts* every fresh count — warming is an investment with its own
/// payoff — and the next pass starts a fresh window, so a cache warmed
/// by earlier (even bypassed) passes re-engages the moment its hits
/// prove it. Thread-safe: the window is positional evidence, not a
/// temporal prefix, so racy interleaving only perturbs timing.
#[derive(Debug, Default)]
pub struct ProbeGovernor {
    decisions: AtomicU64,
    skips: AtomicU64,
    bypassed: AtomicBool,
}

impl ProbeGovernor {
    /// Fresh governor for one executor pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Should the next reference node be probed?
    pub fn engaged(&self) -> bool {
        if self.bypassed.load(Ordering::Relaxed) {
            return false;
        }
        let decisions = self.decisions.load(Ordering::Relaxed);
        if decisions < PROBE_WINDOW {
            return true;
        }
        if self
            .skips
            .load(Ordering::Relaxed)
            .saturating_mul(BYPASS_SKIP_DENOM)
            < decisions
        {
            self.bypassed.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Record one skip-or-BFS decision (`skipped` = every slot hit).
    #[inline]
    pub fn record(&self, skipped: bool) {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        if skipped {
            self.skips.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// SplitMix64-finalizing hasher for the memo tables.
///
/// Every key hashed here already carries high-quality entropy — an
/// [`EventKey`] feeds its precomputed content hash, the inner slot key
/// packs `(node, h)` into one word — so the table needs a *finalizer*,
/// not a cryptographic stream: one multiply-xor cascade per written
/// word instead of SipHash's per-byte rounds. On the density hot path
/// a cache probe is two hashes; with the default hasher those probes
/// cost more than they saved whenever cross-pair sharing was low (the
/// batch-bench regression this replaces). HashDoS resistance is
/// irrelevant for an internal memo table keyed by measured data.
#[derive(Default)]
struct MixHasher(u64);

impl Hasher for MixHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by our keys): FNV-style fold.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        // SplitMix64 finalizer over the running state.
        let mut z = (self.0 ^ x).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type MixBuild = BuildHasherDefault<MixHasher>;

/// Content-addressed identity of an event's occurrence set.
///
/// Construction sorts/dedups once and precomputes a hash; clones are
/// `Arc`-cheap, so a key can be shared across batch worker threads.
#[derive(Debug, Clone)]
pub struct EventKey {
    hash: u64,
    nodes: Arc<[NodeId]>,
}

impl EventKey {
    /// Key for an occurrence list (any order, duplicates allowed).
    pub fn new(nodes: &[NodeId]) -> Self {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_normalized(sorted)
    }

    /// Key for a list that is already sorted and deduplicated (the
    /// engine's normalized form) — skips the re-sort.
    pub fn from_normalized(nodes: Vec<NodeId>) -> Self {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "not normalized");
        let mut hasher = DefaultHasher::new();
        nodes.hash(&mut hasher);
        EventKey {
            hash: hasher.finish(),
            nodes: nodes.into(),
        }
    }

    /// The normalized occurrence set this key addresses.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        // Hash first (cheap reject), then the sets themselves — a
        // 64-bit collision must not alias two distinct events.
        self.hash == other.hash
            && (Arc::ptr_eq(&self.nodes, &other.nodes) || self.nodes == other.nodes)
    }
}

impl Eq for EventKey {}

impl Hash for EventKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The memoized integer ingredients of one event density (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCount {
    /// `|V^h_r|` (includes `r` itself).
    pub vicinity_size: u32,
    /// `|V_e ∩ V^h_r|` for the keyed event `e`.
    pub count: u32,
}

impl CachedCount {
    /// `s^h_e(r)` — identical arithmetic to the uncached
    /// [`DensityCounts`](crate::density::DensityCounts) accessors, so
    /// cached and uncached densities are bit-identical.
    #[inline]
    pub fn density(&self) -> f64 {
        self.count as f64 / self.vicinity_size as f64
    }
}

const SHARDS: usize = 16;

/// Approximate heap bytes charged per memoized `(event, node, h)`
/// slot: the inner-map entry (key word + count + hash-table slack)
/// plus its second-chance ring slot. The budget arithmetic only needs
/// to be *proportional* to real usage — the policy evicts in entry
/// units either way — so a fixed per-slot estimate keeps accounting
/// off the probe hot path.
pub const SLOT_BYTES: usize = 64;

/// Approximate heap bytes charged once per event per shard: the outer
/// map entry, the shared `Arc<[NodeId]>` occurrence set (4 bytes per
/// node) and the fresh-compute tally slot.
fn event_bytes(key: &EventKey) -> usize {
    96 + 4 * key.nodes().len()
}

/// Inner slot key: `(reference node, h)` packed into one word, so a
/// probe hashes a single `u64` through [`MixHasher`].
#[inline]
fn slot_key(r: NodeId, h: u32) -> u64 {
    (r as u64) << 32 | h as u64
}

/// One memoized slot: the count plus the second-chance referenced bit
/// (set on every hit, cleared by the eviction sweep).
#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    value: CachedCount,
    referenced: bool,
}

/// One shard of the memo table, nested `event → (node, h) → count`.
///
/// The nesting is load-bearing for probe cost: the outer lookup takes
/// the [`EventKey`] **by reference** (no `Arc` clone per probe, unlike
/// a flat `(EventKey, node, h)` tuple key, which must be constructed
/// owned), and the inner key is one packed word. An event's entries
/// for one reference node also share the outer bucket, so the batched
/// probes ([`DensityCache::lookup_pair`] / [`DensityCache::lookup_many`])
/// touch each event's inner map once. The fresh-compute tally lives in
/// the shard too, so an insert updates it under the lock it already
/// holds instead of taking a second, global one.
///
/// Under a byte budget the shard additionally maintains `ring`, the
/// second-chance FIFO over its resident `(event, slot)` identities
/// (each exactly once — pushed on fresh insert, removed on eviction);
/// `resident_bytes` tracks the estimated footprint either way, so an
/// unbounded cache can still report its size.
#[derive(Debug, Default)]
struct Shard {
    slots: HashMap<EventKey, HashMap<u64, SlotEntry, MixBuild>, MixBuild>,
    fresh: HashMap<EventKey, u64, MixBuild>,
    ring: VecDeque<(EventKey, u64)>,
    resident_bytes: usize,
    evictions: u64,
}

impl Shard {
    /// Insert one measured count, tallying freshness on first fill.
    /// `shard_budget` is this shard's slice of the byte budget (`None`
    /// = unbounded, today's append-only behavior: no ring, no sweep).
    fn insert(
        &mut self,
        event: &EventKey,
        slot: u64,
        value: CachedCount,
        shard_budget: Option<usize>,
    ) {
        let entry = SlotEntry {
            value,
            referenced: false,
        };
        // Clone the key only on the event's first entry in this shard;
        // steady-state inserts take the single-hash fast path.
        let fresh_slot = match self.slots.get_mut(event) {
            Some(slots) => slots.insert(slot, entry).is_none(),
            None => {
                let mut slots = HashMap::<u64, SlotEntry, MixBuild>::default();
                slots.insert(slot, entry);
                self.slots.insert(event.clone(), slots);
                self.resident_bytes += event_bytes(event);
                true
            }
        };
        if fresh_slot {
            self.resident_bytes += SLOT_BYTES;
            match self.fresh.get_mut(event) {
                Some(tally) => *tally += 1,
                None => {
                    self.fresh.insert(event.clone(), 1);
                }
            }
            if let Some(budget) = shard_budget {
                self.ring.push_back((event.clone(), slot));
                self.evict_to_budget(budget);
            }
        }
    }

    /// Second-chance sweep: pop the ring front; a referenced entry has
    /// its bit cleared and re-queues, an unreferenced one is evicted.
    /// Terminates because every iteration either evicts (shrinking the
    /// ring) or clears one referenced bit (bits are only re-set by
    /// lookups, which cannot run while this shard's lock is held). The
    /// newest entry is always retained, so a budget smaller than one
    /// entry degrades to a one-entry cache instead of thrashing the
    /// insert that is currently being paid for.
    fn evict_to_budget(&mut self, budget: usize) {
        while self.resident_bytes > budget && self.ring.len() > 1 {
            let (event, slot) = self.ring.pop_front().expect("ring non-empty");
            let Some(slots) = self.slots.get_mut(&event) else {
                debug_assert!(false, "ring names an evicted event");
                continue;
            };
            match slots.get_mut(&slot) {
                Some(e) if e.referenced => {
                    e.referenced = false;
                    self.ring.push_back((event, slot));
                }
                Some(_) => {
                    slots.remove(&slot);
                    self.resident_bytes -= SLOT_BYTES;
                    self.evictions += 1;
                    if slots.is_empty() {
                        self.slots.remove(&event);
                        self.resident_bytes -= event_bytes(&event);
                    }
                }
                None => debug_assert!(false, "ring names an evicted slot"),
            }
        }
    }

    /// Probe one slot, marking it referenced on a hit.
    #[inline]
    fn probe(&mut self, event: &EventKey, slot: u64) -> Option<CachedCount> {
        let e = self.slots.get_mut(event)?.get_mut(&slot)?;
        e.referenced = true;
        Some(e.value)
    }
}

/// Thread-safe `(event, node, h) → (|V^h_r|, count)` memo table.
///
/// Sharded by reference node so concurrent batch workers rarely
/// contend; all counters are monotone atomics. See the module docs for
/// the consistency contract.
#[derive(Debug)]
pub struct DensityCache {
    shards: Vec<Mutex<Shard>>,
    /// Structural fingerprint of the graph this cache's counts were
    /// measured on — counts alone would collide under count-neutral
    /// rewirings like `tesc_graph::perturb`.
    graph_fingerprint: u64,
    /// Total byte budget (`None` = unbounded append-only cache); each
    /// shard enforces `budget / SHARDS`.
    byte_budget: Option<usize>,
    bfs_invocations: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DensityCache {
    /// Empty cache pinned to `g`'s structure.
    pub fn for_graph<G: Adjacency>(g: &G) -> Self {
        Self::new(g, None)
    }

    /// Empty cache pinned to `g`'s structure with a resident-memory
    /// cap of (approximately) `byte_budget` bytes, enforced by the
    /// sharded second-chance policy described in the module docs.
    /// Results remain bit-identical to the unbounded cache; only the
    /// hit rate (and therefore the BFS count) can differ.
    pub fn for_graph_bounded<G: Adjacency>(g: &G, byte_budget: usize) -> Self {
        Self::new(g, Some(byte_budget))
    }

    /// Shared constructor: `None` = unbounded.
    pub(crate) fn new<G: Adjacency>(g: &G, byte_budget: Option<usize>) -> Self {
        DensityCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            graph_fingerprint: g.fingerprint(),
            byte_budget,
            bfs_invocations: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured byte budget (`None` = unbounded).
    #[inline]
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Per-shard slice of the byte budget.
    #[inline]
    fn shard_budget(&self) -> Option<usize> {
        self.byte_budget.map(|b| b / SHARDS)
    }

    /// Was this cache created for (a graph structurally identical to)
    /// `g`? Compares [`Adjacency::fingerprint`]s, so count-neutral
    /// rewirings are caught too.
    pub fn matches_graph<G: Adjacency>(&self, g: &G) -> bool {
        self.graph_fingerprint == g.fingerprint()
    }

    #[inline]
    fn shard(&self, r: NodeId) -> &Mutex<Shard> {
        &self.shards[r as usize % SHARDS]
    }

    /// Look up the memoized count for `(event, r, h)`, recording a
    /// hit/miss (and, under a byte budget, marking the entry
    /// recently-referenced for the second-chance sweep).
    pub fn lookup(&self, event: &EventKey, r: NodeId, h: u32) -> Option<CachedCount> {
        let got = self
            .shard(r)
            .lock()
            .expect("density cache poisoned")
            .probe(event, slot_key(r, h));
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Multi-event probe — the fused-pass counterpart of
    /// [`DensityCache::lookup`]: resolve `(event, r, h)` for *every*
    /// key of `events` under **one** shard-lock acquisition (all slots
    /// of one reference node live in the same shard, so the fused
    /// density executor pays one lock per node instead of one per
    /// event). `out` is cleared and receives one slot per key in
    /// order; the return value says whether every slot hit (= the BFS
    /// for `r` can be skipped entirely). Hit/miss counters advance per
    /// key, exactly like repeated `lookup` calls.
    pub fn lookup_many<'k>(
        &self,
        events: impl IntoIterator<Item = &'k EventKey>,
        r: NodeId,
        h: u32,
        out: &mut Vec<Option<CachedCount>>,
    ) -> bool {
        out.clear();
        let slot = slot_key(r, h);
        let mut hits = 0u64;
        let mut misses = 0u64;
        {
            let mut shard = self.shard(r).lock().expect("density cache poisoned");
            for key in events {
                let got = shard.probe(key, slot);
                match got {
                    Some(_) => hits += 1,
                    None => misses += 1,
                }
                out.push(got);
            }
        }
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        misses == 0
    }

    /// Two-event probe under **one** shard-lock acquisition — the
    /// batched form of two [`DensityCache::lookup`] calls for the
    /// per-pair density path, whose every reference node needs exactly
    /// the `(a, r, h)` and `(b, r, h)` slots. Both slots live in `r`'s
    /// shard, so resolving them together halves the lock traffic of
    /// the dominant probe pattern (the batch-bench regression fix —
    /// per-node locking cost more than the cache saved when cross-pair
    /// sharing was low). Hit/miss counters advance per slot, exactly
    /// like two `lookup` calls.
    pub fn lookup_pair(
        &self,
        a: &EventKey,
        b: &EventKey,
        r: NodeId,
        h: u32,
    ) -> (Option<CachedCount>, Option<CachedCount>) {
        let key = slot_key(r, h);
        let (got_a, got_b) = {
            let mut shard = self.shard(r).lock().expect("density cache poisoned");
            (shard.probe(a, key), shard.probe(b, key))
        };
        let hits = got_a.is_some() as u64 + got_b.is_some() as u64;
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if hits < 2 {
            self.misses.fetch_add(2 - hits, Ordering::Relaxed);
        }
        (got_a, got_b)
    }

    /// Insert a freshly measured count. Counts the insertion against
    /// the event's fresh-compute tally only if the slot was empty
    /// (under races two workers may measure the same slot; the value
    /// is deterministic either way).
    pub fn insert(&self, event: &EventKey, r: NodeId, h: u32, value: CachedCount) {
        self.insert_many([(event, value)], r, h);
    }

    /// Insert several freshly measured counts for one reference node
    /// under **one** shard-lock acquisition — the batched form of
    /// repeated [`DensityCache::insert`] calls, used by the fused and
    /// grouped density passes that measure every missing slot of a
    /// node with a single BFS. Semantics per entry are identical to
    /// `insert`.
    pub fn insert_many<'k>(
        &self,
        entries: impl IntoIterator<Item = (&'k EventKey, CachedCount)>,
        r: NodeId,
        h: u32,
    ) {
        let slot = slot_key(r, h);
        let budget = self.shard_budget();
        let mut shard = self.shard(r).lock().expect("density cache poisoned");
        for (event, value) in entries {
            shard.insert(event, slot, value, budget);
        }
    }

    /// Bulk insertion across many reference nodes, bucketed by shard
    /// so a whole grouped density pass pays one lock acquisition per
    /// *shard* (16) instead of one per node (thousands). Used by the
    /// scatter stages of the grouped executors; semantics per entry
    /// are identical to [`DensityCache::insert`].
    pub fn insert_bulk<'k>(
        &self,
        h: u32,
        entries: impl IntoIterator<Item = (NodeId, &'k EventKey, CachedCount)>,
    ) {
        let mut buckets: Vec<Vec<(u64, &EventKey, CachedCount)>> =
            (0..SHARDS).map(|_| Vec::new()).collect();
        for (r, event, value) in entries {
            buckets[r as usize % SHARDS].push((slot_key(r, h), event, value));
        }
        let budget = self.shard_budget();
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut shard = shard.lock().expect("density cache poisoned");
            for (slot, event, value) in bucket {
                shard.insert(event, slot, value, budget);
            }
        }
    }

    /// Record one density BFS executed through the cache.
    #[inline]
    pub fn record_bfs(&self) {
        self.record_bfs_n(1);
    }

    /// Record `n` density BFS lanes executed through the cache in one
    /// counter update (the grouped executors' bulk form).
    #[inline]
    pub fn record_bfs_n(&self, n: u64) {
        self.bfs_invocations.fetch_add(n, Ordering::Relaxed);
    }

    /// Total density BFS invocations executed through the cache — the
    /// work the cache could not avoid.
    pub fn bfs_invocations(&self) -> u64 {
        self.bfs_invocations.load(Ordering::Relaxed)
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the second-chance policy (always 0 for an
    /// unbounded cache).
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("density cache poisoned").evictions)
            .sum()
    }

    /// Estimated resident heap footprint of the memo tables, in bytes
    /// (the quantity the byte budget bounds; see [`SLOT_BYTES`]).
    /// Maintained for unbounded caches too, so `/stats` can report the
    /// append-only growth a budget would have capped.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("density cache poisoned").resident_bytes)
            .sum()
    }

    /// Total fresh slot computations across all events. For a bounded
    /// cache the books must balance:
    /// `fresh_inserts() == len() + evictions()` — every slot ever
    /// freshly measured is either still resident or was evicted
    /// (asserted in `tests/cache_eviction.rs`).
    pub fn fresh_inserts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("density cache poisoned")
                    .fresh
                    .values()
                    .sum::<u64>()
            })
            .sum()
    }

    /// How many distinct `(node, h)` slots were freshly computed for
    /// `event` — "density BFS once per reference node" means this
    /// equals the number of distinct reference nodes the batch touched
    /// for the event.
    pub fn fresh_computes(&self, event: &EventKey) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("density cache poisoned")
                    .fresh
                    .get(event)
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Number of memoized `(event, node, h)` entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("density cache poisoned")
                    .slots
                    .values()
                    .map(HashMap::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesc_graph::csr::{from_edges, CsrGraph};

    fn g() -> CsrGraph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn event_key_is_order_and_dup_insensitive() {
        let a = EventKey::new(&[3, 1, 2, 1]);
        let b = EventKey::new(&[1, 2, 3]);
        let c = EventKey::new(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.nodes(), &[1, 2, 3]);
    }

    #[test]
    fn lookup_insert_round_trip_with_counters() {
        let cache = DensityCache::for_graph(&g());
        let e = EventKey::new(&[0, 2]);
        assert_eq!(cache.lookup(&e, 1, 1), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let v = CachedCount {
            vicinity_size: 3,
            count: 2,
        };
        cache.insert(&e, 1, 1, v);
        assert_eq!(cache.lookup(&e, 1, 1), Some(v));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.fresh_computes(&e), 1);
        assert_eq!(cache.len(), 1);
        // Same node, different h → distinct slot.
        assert_eq!(cache.lookup(&e, 1, 2), None);
        // Re-inserting the same slot does not double-count freshness.
        cache.insert(&e, 1, 1, v);
        assert_eq!(cache.fresh_computes(&e), 1);
    }

    #[test]
    fn lookup_many_resolves_all_slots_in_order() {
        let cache = DensityCache::for_graph(&g());
        let (e1, e2, e3) = (
            EventKey::new(&[0]),
            EventKey::new(&[1, 2]),
            EventKey::new(&[3]),
        );
        let v1 = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        let v3 = CachedCount {
            vicinity_size: 3,
            count: 2,
        };
        cache.insert(&e1, 2, 1, v1);
        cache.insert(&e3, 2, 1, v3);
        let mut out = Vec::new();
        // Partial hit: slot order preserved, missing slot is None.
        let all = cache.lookup_many([&e1, &e2, &e3], 2, 1, &mut out);
        assert!(!all);
        assert_eq!(out, vec![Some(v1), None, Some(v3)]);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        // Full hit after the gap is filled.
        cache.insert(&e2, 2, 1, v1);
        let all = cache.lookup_many([&e1, &e2, &e3], 2, 1, &mut out);
        assert!(all, "every slot memoized ⇒ BFS skippable");
        assert_eq!(out.len(), 3);
        assert_eq!((cache.hits(), cache.misses()), (5, 1));
        // Different node: clean misses, `out` re-cleared.
        assert!(!cache.lookup_many([&e1], 0, 1, &mut out));
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn lookup_pair_matches_two_lookups() {
        let cache = DensityCache::for_graph(&g());
        let (ea, eb) = (EventKey::new(&[0, 1]), EventKey::new(&[2, 3]));
        let v = CachedCount {
            vicinity_size: 4,
            count: 2,
        };
        assert_eq!(cache.lookup_pair(&ea, &eb, 1, 1), (None, None));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        cache.insert(&ea, 1, 1, v);
        assert_eq!(cache.lookup_pair(&ea, &eb, 1, 1), (Some(v), None));
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
        cache.insert(&eb, 1, 1, v);
        assert_eq!(cache.lookup_pair(&ea, &eb, 1, 1), (Some(v), Some(v)));
        assert_eq!((cache.hits(), cache.misses()), (3, 3));
    }

    #[test]
    fn insert_many_batches_under_one_lock_with_fresh_tallies() {
        let cache = DensityCache::for_graph(&g());
        let (ea, eb) = (EventKey::new(&[0]), EventKey::new(&[1]));
        let v = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        cache.insert_many([(&ea, v), (&eb, v)], 2, 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.fresh_computes(&ea), 1);
        assert_eq!(cache.fresh_computes(&eb), 1);
        // Re-inserting occupied slots does not double-count freshness.
        cache.insert_many([(&ea, v), (&eb, v)], 2, 1);
        assert_eq!(cache.fresh_computes(&ea), 1);
        assert_eq!(cache.lookup(&ea, 2, 1), Some(v));
    }

    #[test]
    fn density_matches_uncached_arithmetic() {
        let v = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        assert_eq!(v.density().to_bits(), (1.0f64 / 3.0f64).to_bits());
    }

    #[test]
    fn graph_shape_pinning() {
        let cache = DensityCache::for_graph(&g());
        assert!(cache.matches_graph(&g()));
        assert!(!cache.matches_graph(&g().with_edges(&[(0, 3)])));
        // Count-neutral rewiring (same |V|, same |E|) is caught too.
        let rewired = from_edges(4, &[(0, 1), (1, 3), (2, 3)]);
        assert_eq!(rewired.num_edges(), g().num_edges());
        assert!(!cache.matches_graph(&rewired));
    }

    #[test]
    fn cache_is_sync() {
        const fn assert_sync<T: Sync + Send>() {}
        assert_sync::<DensityCache>();
        assert_sync::<EventKey>();
    }

    #[test]
    fn unbounded_cache_never_evicts_and_tracks_bytes() {
        let cache = DensityCache::for_graph(&g());
        assert_eq!(cache.byte_budget(), None);
        let e = EventKey::new(&[0, 1]);
        let v = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        for r in 0..4u32 {
            cache.insert(&e, r, 1, v);
        }
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.fresh_inserts(), 4);
        // 4 slots + the event registered in however many shards it
        // landed in (4 distinct nodes → up to 4 shards).
        assert!(cache.resident_bytes() >= 4 * SLOT_BYTES);
    }

    #[test]
    fn bounded_cache_evicts_to_budget_and_books_balance() {
        // Route everything through one shard (same node, varying h) so
        // the tiny budget is exercised deterministically.
        let budget = SHARDS * (SLOT_BYTES * 3 + 200);
        let cache = DensityCache::for_graph_bounded(&g(), budget);
        assert_eq!(cache.byte_budget(), Some(budget));
        let e = EventKey::new(&[0, 1]);
        let v = CachedCount {
            vicinity_size: 3,
            count: 1,
        };
        for h in 1..=20u32 {
            cache.insert(&e, 1, h, v);
        }
        assert!(cache.evictions() > 0, "budget forced evictions");
        assert!(
            cache.resident_bytes() <= budget / SHARDS + event_bytes(&e) + SLOT_BYTES,
            "resident {} far over shard budget",
            cache.resident_bytes()
        );
        // Every fresh insert is either resident or evicted.
        assert_eq!(
            cache.fresh_inserts(),
            cache.len() as u64 + cache.evictions()
        );
        // Evicted slots simply miss again; re-inserting works.
        assert_eq!(cache.lookup(&e, 1, 1), None);
        cache.insert(&e, 1, 1, v);
        assert_eq!(cache.lookup(&e, 1, 1), Some(v));
    }

    #[test]
    fn second_chance_prefers_unreferenced_victims() {
        // Budget fits ~3 slots per shard; everything lands in node 1's
        // shard. Keep slot h=1 hot via lookups and verify the sweep
        // spares it while colder slots churn.
        let budget = SHARDS * (SLOT_BYTES * 3 + 200);
        let cache = DensityCache::for_graph_bounded(&g(), budget);
        let e = EventKey::new(&[0, 2]);
        let v = CachedCount {
            vicinity_size: 3,
            count: 2,
        };
        cache.insert(&e, 1, 1, v);
        for h in 2..=12u32 {
            // Touch the hot slot before each insert so its referenced
            // bit is set whenever the sweep reaches it.
            assert_eq!(cache.lookup(&e, 1, 1), Some(v), "hot slot at h={h}");
            cache.insert(&e, 1, h, v);
        }
        assert!(cache.evictions() > 0);
        assert_eq!(
            cache.lookup(&e, 1, 1),
            Some(v),
            "recently referenced entry survived the sweeps"
        );
    }

    #[test]
    fn eviction_drops_empty_event_slabs() {
        // One-slot budget: each insert evicts the previous slot; when
        // an event's last slot goes, its slab bytes are released.
        let budget = 1; // 0 per shard → retain-one-entry floor
        let cache = DensityCache::for_graph_bounded(&g(), budget);
        let (ea, eb) = (EventKey::new(&[0]), EventKey::new(&[1, 2, 3]));
        let v = CachedCount {
            vicinity_size: 2,
            count: 1,
        };
        cache.insert(&ea, 1, 1, v);
        let with_a = cache.resident_bytes();
        cache.insert(&eb, 1, 1, v);
        // `ea`'s only slot was evicted, so its slab went with it.
        assert_eq!(cache.lookup(&ea, 1, 1), None);
        assert_eq!(cache.lookup(&eb, 1, 1), Some(v));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.resident_bytes(),
            with_a - event_bytes(&ea) + event_bytes(&eb)
        );
    }
}
