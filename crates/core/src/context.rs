//! Versioned [`TescContext`] — the serving-shaped core of the stack.
//!
//! The paper notes the vicinity index "can be efficiently updated as
//! the graph changes" (Sec. 4.2); this module turns that observation
//! into an ingestion architecture. A [`TescContext`] owns a sequence
//! of immutable [`Snapshot`]s — `Arc` bundles of
//! [`CsrGraph`] + [`VicinityIndex`] + [`EventStore`] stamped with a
//! monotone version — and an ingestion API
//! ([`TescContext::add_edges`], [`TescContext::add_event_occurrences`],
//! [`TescContext::add_event`]) that *prepares the next snapshot off to
//! the side* and atomically publishes it:
//!
//! * **Readers never block and never tear.** [`TescContext::snapshot`]
//!   is an `Arc` clone; a long-lived engine or batch run keeps working
//!   against the graph/index/events triple it started with, even while
//!   writers publish newer versions (the snapshot-separation idea of
//!   HTAP designs, scaled to this library).
//! * **Writers are incremental.** `add_edges` re-derives only the
//!   dirty region of the vicinity index via the per-node rebuild path
//!   of [`VicinityIndex::refresh`] — cost proportional to the
//!   perturbed neighborhood, not `|V|` BFS sweeps. Event ingestion
//!   reuses the graph and index entirely.
//! * **Each snapshot carries a cross-pair [`DensityCache`]** shared by
//!   every engine derived from it. Graph-changing ingests get a fresh
//!   cache (memoized vicinity counts can never leak across graph
//!   versions); event-only ingests keep riding the previous
//!   snapshot's warm cache, which stays valid because entries are
//!   content-addressed by occurrence set and depend only on the
//!   unchanged graph.
//!
//! ```
//! use tesc::context::TescContext;
//! use tesc::{EventStore, TescConfig};
//! use tesc_graph::generators::grid;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut events = EventStore::new();
//! let a = events.add_event("a", (0..20).collect());
//! let b = events.add_event("b", (10..30).collect());
//! let ctx = TescContext::new(grid(20, 20), events, 2);
//!
//! let before = ctx.snapshot();                 // readers pin version 1
//! ctx.add_edges(&[(0, 399)]).unwrap();         // writers publish version 2
//! ctx.add_event_occurrences(b, &[399]).unwrap(); // ... and version 3
//!
//! let after = ctx.snapshot();
//! assert_eq!((before.version(), after.version()), (1, 3));
//! // `before` still serves the pre-ingestion world:
//! assert!(!before.graph().has_edge(0, 399));
//! let cfg = TescConfig::new(2).with_sample_size(100);
//! let r = after
//!     .engine()
//!     .test(after.events().nodes(a), after.events().nodes(b), &cfg,
//!           &mut StdRng::seed_from_u64(7))
//!     .unwrap();
//! assert!(r.n_refs > 0);
//! ```

use crate::batch::{BatchReport, BatchRequest, EventPair};
use crate::cache::DensityCache;
use crate::engine::TescEngine;
use crate::persist::{Durability, PersistError, Store, StoreOptions, WalRecord};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use tesc_events::{EventId, EventStore, EventStoreError};
use tesc_graph::relabel::RelabeledGraph;
use tesc_graph::{Adjacency, CsrGraph, EdgeError, NodeId, VicinityIndex};

/// Failure modes of the ingestion API. All checks run before any
/// state is built, so a failed ingest publishes nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// An edge of the delta is invalid for the current graph.
    BadEdge(EdgeError),
    /// An event mutation failed (unknown id, duplicate name).
    BadEvent(EventStoreError),
    /// An occurrence node is not a node of the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// The durability layer could not log the mutation to the WAL.
    /// Nothing was published: the context still serves the previous
    /// version, consistent with what recovery would reconstruct.
    Persist {
        /// The underlying persistence error, stringified.
        message: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::BadEdge(e) => write!(f, "bad edge delta: {e}"),
            IngestError::BadEvent(e) => write!(f, "bad event delta: {e}"),
            IngestError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "occurrence node {node} out of range for {num_nodes} nodes"
            ),
            IngestError::Persist { message } => {
                write!(f, "durable log append failed: {message}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<EdgeError> for IngestError {
    fn from(e: EdgeError) -> Self {
        IngestError::BadEdge(e)
    }
}

impl From<EventStoreError> for IngestError {
    fn from(e: EventStoreError) -> Self {
        IngestError::BadEvent(e)
    }
}

/// Resident-memory accounting of one snapshot's durable state —
/// what `GET /stats` serves under `"memory"`. Derived quantities the
/// snapshot also carries (vicinity index, density cache) report
/// their own sizes; the cache's live byte count in particular keeps
/// moving, so it is read from [`DensityCache::resident_bytes`] at
/// query time rather than frozen here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Adjacency bytes of the snapshot's plain-CSR graph (offsets +
    /// neighbor array).
    pub graph_plain_bytes: usize,
    /// What the same topology costs in the delta/varint compressed
    /// encoding ([`tesc_graph::CompressedCsr`]) — the footprint a
    /// `.tgraph`-loaded serving process would hold resident.
    pub graph_compressed_bytes: usize,
    /// Event-registry bytes (names + occurrence lists).
    pub event_bytes: usize,
}

/// One immutable, internally consistent version of the world:
/// graph, vicinity index, event store and a version stamp, plus a
/// snapshot-local cross-pair density cache.
///
/// Snapshots are handed out as `Arc<Snapshot>`; holding one pins the
/// version for as long as needed regardless of writer activity.
#[derive(Debug)]
pub struct Snapshot {
    graph: Arc<CsrGraph>,
    vicinity: Arc<VicinityIndex>,
    events: Arc<EventStore>,
    cache: Arc<DensityCache>,
    /// Locality-relabeled density substrate (present when the context
    /// runs with relabeling on); like the cache it is rebuilt on graph
    /// changes and shared across event-only versions.
    relabel: Option<Arc<RelabeledGraph>>,
    version: u64,
    /// Memory accounting, computed on first request (the compressed
    /// figure costs an `O(E)` encoding pass, which ingestion publishes
    /// should not pay) and then pinned for the snapshot's lifetime.
    memory: std::sync::OnceLock<MemoryStats>,
}

impl Snapshot {
    /// `reuse_cache` carries the previous snapshot's cache forward
    /// when the graph is unchanged (event-only deltas): entries are
    /// content-addressed by occurrence set and depend only on the
    /// graph, so they stay valid — and stay warm. Graph changes must
    /// pass `None` to get a fresh cache, built with `cache_budget`
    /// (the context's bounded-memory knob — see
    /// [`TescContext::with_cache_budget`]). `relabel` follows the same
    /// rule: graph changes pass a freshly built substrate (or `None`
    /// when relabeling is off), event-only deltas clone the previous
    /// snapshot's.
    fn assemble(
        graph: Arc<CsrGraph>,
        vicinity: Arc<VicinityIndex>,
        events: Arc<EventStore>,
        version: u64,
        reuse_cache: Option<Arc<DensityCache>>,
        cache_budget: Option<usize>,
        relabel: Option<Arc<RelabeledGraph>>,
    ) -> Arc<Self> {
        let cache =
            reuse_cache.unwrap_or_else(|| Arc::new(DensityCache::new(&*graph, cache_budget)));
        Arc::new(Snapshot {
            graph,
            vicinity,
            events,
            cache,
            relabel,
            version,
            memory: std::sync::OnceLock::new(),
        })
    }

    /// Resident-memory accounting of this snapshot (see
    /// [`MemoryStats`]); the compressed-graph figure is measured on
    /// first call and memoized.
    pub fn memory(&self) -> MemoryStats {
        *self.memory.get_or_init(|| MemoryStats {
            graph_plain_bytes: self.graph.resident_bytes(),
            graph_compressed_bytes: tesc_graph::CompressedCsr::from_graph(&self.graph)
                .resident_bytes(),
            event_bytes: self.events.resident_bytes(),
        })
    }

    /// Monotone version stamp (the context's first snapshot is 1).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// 64-bit fingerprint of the snapshot's durable state: graph
    /// fingerprint × event-store fingerprint × version, FNV-mixed.
    /// Recovery equivalence is asserted against this — two snapshots
    /// with equal fingerprints serve bit-identical answers to every
    /// seeded query.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = self.graph.fingerprint();
        h = (h ^ self.events.fingerprint()).wrapping_mul(PRIME);
        h = (h ^ self.version).wrapping_mul(PRIME);
        h
    }

    /// The snapshot's graph.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The snapshot's `|V^h_v|` index (levels `1..=max_level` of the
    /// context).
    #[inline]
    pub fn vicinity(&self) -> &VicinityIndex {
        &self.vicinity
    }

    /// The snapshot's event registry.
    #[inline]
    pub fn events(&self) -> &EventStore {
        &self.events
    }

    /// The snapshot-local cross-pair density cache (shared by every
    /// engine derived from this snapshot, so repeated batches against
    /// one version keep amortizing).
    #[inline]
    pub fn density_cache(&self) -> &Arc<DensityCache> {
        &self.cache
    }

    /// The snapshot's locality-relabeled density substrate, when the
    /// context was configured with
    /// [`TescContext::with_relabeling`]`(true)`.
    #[inline]
    pub fn relabeled(&self) -> Option<&Arc<RelabeledGraph>> {
        self.relabel.as_ref()
    }

    /// A fully wired engine over this snapshot: vicinity-index-backed
    /// (all samplers available) with the snapshot's density cache —
    /// and, when the context relabels, the shared relabeled substrate —
    /// attached. The engine borrows the snapshot, so keep the
    /// `Arc<Snapshot>` alive for the engine's lifetime.
    pub fn engine(&self) -> TescEngine<'_> {
        let mut engine = TescEngine::with_vicinity_arc(&*self.graph, self.vicinity.clone())
            .with_density_cache(self.cache.clone());
        if let Some(r) = &self.relabel {
            engine = engine.with_relabeled_arc(r.clone());
        }
        engine
    }

    /// Resolve two registered events into a labeled
    /// [`EventPair`] (`"a×b"`) for batch requests.
    pub fn event_pair(&self, a: EventId, b: EventId) -> EventPair {
        EventPair::new(
            format!("{}×{}", self.events.name(a), self.events.name(b)),
            self.events.nodes(a).to_vec(),
            self.events.nodes(b).to_vec(),
        )
    }

    /// Run a batch request against this snapshot with the snapshot's
    /// cache-wired engine — the one-liner for "test these pairs at
    /// this version".
    pub fn run_batch(&self, req: &BatchRequest) -> BatchReport {
        crate::batch::run_batch(&self.engine(), req)
    }
}

/// Versioned, concurrently readable TESC state with incremental
/// ingestion. See the module docs for the architecture.
#[derive(Debug)]
pub struct TescContext {
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers so each prepares its snapshot against the
    /// latest published one; held across the (potentially long)
    /// rebuild, while `current`'s lock is only held for the swap.
    writer: Mutex<()>,
    max_level: u32,
    /// Build (and maintain across graph versions) a locality-relabeled
    /// density substrate for every snapshot.
    relabeling: bool,
    /// Byte budget handed to every freshly created snapshot cache
    /// (`None` = unbounded append-only caches, the batch default).
    cache_budget: Option<usize>,
    /// Durable sink (ingestion WAL + periodic snapshots) when the
    /// context is attached to a data directory. Mutated only under
    /// `writer` — the `Mutex` exists because the writer methods take
    /// `&self`; the lock ordering is always `writer` → `durability`.
    durability: Mutex<Option<Durability>>,
}

impl TescContext {
    /// Context over an initial graph and event store; builds the
    /// vicinity index for levels `1..=max_level` single-threaded.
    ///
    /// # Panics
    ///
    /// Panics if the event store references out-of-range nodes — use
    /// [`TescContext::try_new`] to handle that as an error.
    pub fn new(graph: CsrGraph, events: EventStore, max_level: u32) -> Self {
        Self::with_threads(graph, events, max_level, 1)
    }

    /// Fallible [`TescContext::new`].
    pub fn try_new(
        graph: CsrGraph,
        events: EventStore,
        max_level: u32,
    ) -> Result<Self, IngestError> {
        Self::try_with_threads(graph, events, max_level, 1)
    }

    /// [`TescContext::new`] with the offline index sweep fanned out
    /// over `threads` workers via [`VicinityIndex::build_parallel`].
    ///
    /// # Panics
    ///
    /// Panics if the event store references out-of-range nodes — use
    /// [`TescContext::try_with_threads`] to handle that as an error.
    pub fn with_threads(
        graph: CsrGraph,
        events: EventStore,
        max_level: u32,
        threads: usize,
    ) -> Self {
        Self::try_with_threads(graph, events, max_level, threads)
            .unwrap_or_else(|e| panic!("invalid initial event store: {e}"))
    }

    /// Fallible [`TescContext::with_threads`]: the initial event store
    /// is validated against the graph exactly like later ingests, so
    /// out-of-range occurrences surface as
    /// [`IngestError::NodeOutOfRange`] here instead of panicking
    /// inside the first test.
    pub fn try_with_threads(
        graph: CsrGraph,
        events: EventStore,
        max_level: u32,
        threads: usize,
    ) -> Result<Self, IngestError> {
        Self::try_with_threads_at(graph, events, max_level, threads, 1)
    }

    /// [`TescContext::try_with_threads`] starting at an arbitrary
    /// version stamp — the recovery path re-creating a context "as of"
    /// the version its data directory reached.
    fn try_with_threads_at(
        graph: CsrGraph,
        events: EventStore,
        max_level: u32,
        threads: usize,
        version: u64,
    ) -> Result<Self, IngestError> {
        for (_, _, nodes) in events.iter() {
            check_nodes(graph.num_nodes(), nodes)?;
        }
        let vicinity = VicinityIndex::build_parallel(&graph, max_level, threads);
        Ok(TescContext {
            current: RwLock::new(Snapshot::assemble(
                Arc::new(graph),
                Arc::new(vicinity),
                Arc::new(events),
                version,
                None,
                None,
                None,
            )),
            writer: Mutex::new(()),
            max_level,
            relabeling: false,
            cache_budget: None,
            durability: Mutex::new(None),
        })
    }

    /// Cap every snapshot cache's resident memory at (approximately)
    /// `bytes` via the second-chance eviction policy of
    /// [`DensityCache::for_graph_bounded`] (`None` restores the
    /// unbounded default). Long-lived contexts — a serving daemon, a
    /// `tesc-cli stream` replay — should run bounded: the append-only
    /// cache is a leak when the event stream never ends. Results are
    /// bit-identical either way; only hit rates differ. Builder-style —
    /// call right after construction; the current snapshot is
    /// re-published (same version) with a fresh budgeted cache, and
    /// every later graph-version cache inherits the budget.
    pub fn with_cache_budget(self, bytes: Option<usize>) -> Self {
        let mut ctx = self;
        ctx.cache_budget = bytes;
        let base = ctx.snapshot();
        let next = Snapshot::assemble(
            base.graph.clone(),
            base.vicinity.clone(),
            base.events.clone(),
            base.version,
            None, // fresh cache under the new budget
            bytes,
            base.relabel.clone(),
        );
        *ctx.current.write().expect("context lock poisoned") = next;
        ctx
    }

    /// The byte budget freshly created snapshot caches run under
    /// (`None` = unbounded).
    #[inline]
    pub fn cache_budget(&self) -> Option<usize> {
        self.cache_budget
    }

    /// Maintain a locality-relabeled density substrate in every
    /// snapshot (see [`TescEngine::with_relabeling`]): built once per
    /// graph version, shared across event-only versions, and wired
    /// into every [`Snapshot::engine`] automatically. Builder-style —
    /// call right after construction; the current snapshot is
    /// re-published (same version) with the substrate attached.
    /// Results of every test remain bit-identical in original id
    /// space.
    pub fn with_relabeling(mut self, on: bool) -> Self {
        self.relabeling = on;
        let base = self.snapshot();
        let relabel = on.then(|| Arc::new(RelabeledGraph::build(&*base.graph)));
        let next = Snapshot::assemble(
            base.graph.clone(),
            base.vicinity.clone(),
            base.events.clone(),
            base.version,
            Some(base.cache.clone()),
            self.cache_budget,
            relabel,
        );
        *self.current.write().expect("context lock poisoned") = next;
        self
    }

    /// Is the locality-relabeled substrate maintained?
    #[inline]
    pub fn relabeling(&self) -> bool {
        self.relabeling
    }

    /// The vicinity level every snapshot's index covers.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The currently published version stamp.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Pin the currently published snapshot (an `Arc` clone — cheap,
    /// non-blocking with respect to writers preparing the next one).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().expect("context lock poisoned").clone()
    }

    fn publish(&self, next: Arc<Snapshot>) -> Arc<Snapshot> {
        *self.current.write().expect("context lock poisoned") = next.clone();
        next
    }

    /// Log the record producing version `seq` — called by the writer
    /// methods (under the writer lock) strictly *before* publishing.
    /// A no-op without an attached data directory; a failed append
    /// aborts the ingest with nothing published, keeping the served
    /// state equal to what recovery would reconstruct.
    fn log_wal(&self, seq: u64, record: &WalRecord) -> Result<(), IngestError> {
        let mut durability = self.durability.lock().expect("durability lock poisoned");
        if let Some(d) = durability.as_mut() {
            d.log(seq, record).map_err(|e| IngestError::Persist {
                message: e.to_string(),
            })?;
        }
        Ok(())
    }

    /// Checkpoint (snapshot + WAL rotation) if enough records have
    /// accumulated — called by the writer methods after publishing.
    fn maybe_checkpoint(&self, snap: &Snapshot) {
        let mut durability = self.durability.lock().expect("durability lock poisoned");
        if let Some(d) = durability.as_mut() {
            d.maybe_checkpoint(snap.version, &snap.graph, &snap.events);
        }
    }

    /// Ingest an edge delta: validate, rebuild the CSR, incrementally
    /// refresh the vicinity index around the touched endpoints (the
    /// per-node rebuild path of [`VicinityIndex::refresh`]) and
    /// publish the result as the next version. Edges already present
    /// are ignored; a delta with no genuinely new edge returns the
    /// current snapshot unchanged (no version bump). Readers holding
    /// older snapshots are unaffected.
    pub fn add_edges(&self, edges: &[(NodeId, NodeId)]) -> Result<Arc<Snapshot>, IngestError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        base.graph.check_edges(edges)?;
        let new_edges: Vec<(NodeId, NodeId)> = {
            let mut seen: Vec<(NodeId, NodeId)> = edges
                .iter()
                .map(|&(u, v)| (u.min(v), u.max(v)))
                .filter(|&(u, v)| !base.graph.has_edge(u, v))
                .collect();
            seen.sort_unstable();
            seen.dedup();
            seen
        };
        if new_edges.is_empty() {
            return Ok(base);
        }
        let touched: Vec<NodeId> = {
            let mut t: Vec<NodeId> = new_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let graph = Arc::new(base.graph.with_edges(&new_edges));
        // Pure additions: the new graph is a supergraph of the old, so
        // the dirty region discovered through the new adjacency covers
        // every node whose vicinity changed (no `g_old` needed).
        let vicinity = Arc::new(base.vicinity.refreshed(&*graph, None, &touched));
        // The relabeled substrate is graph-derived: rebuild from
        // scratch (a fresh permutation also re-packs the changed
        // region — an incremental patch would erode locality).
        let relabel = self
            .relabeling
            .then(|| Arc::new(RelabeledGraph::build(&*graph)));
        self.log_wal(
            base.version + 1,
            &WalRecord::AddEdges {
                edges: new_edges.clone(),
            },
        )?;
        let next = self.publish(Snapshot::assemble(
            graph,
            vicinity,
            base.events.clone(),
            base.version + 1,
            None, // the graph changed: memoized counts are stale
            self.cache_budget,
            relabel,
        ));
        self.maybe_checkpoint(&next);
        Ok(next)
    }

    /// Register a new event and publish the next version. The graph,
    /// vicinity index *and density cache* are shared with the previous
    /// snapshot (cached counts depend only on the unchanged graph).
    pub fn add_event(
        &self,
        name: impl Into<String>,
        nodes: Vec<NodeId>,
    ) -> Result<(EventId, Arc<Snapshot>), IngestError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        let name: String = name.into();
        check_nodes(base.graph.num_nodes(), &nodes)?;
        let mut events = (*base.events).clone();
        let id = events.try_add_event(name.clone(), nodes.clone())?;
        self.log_wal(base.version + 1, &WalRecord::AddEvent { name, nodes })?;
        let next = self.publish(Snapshot::assemble(
            base.graph.clone(),
            base.vicinity.clone(),
            Arc::new(events),
            base.version + 1,
            Some(base.cache.clone()),
            self.cache_budget,
            base.relabel.clone(),
        ));
        self.maybe_checkpoint(&next);
        Ok((id, next))
    }

    /// Append occurrences to a registered event and publish the next
    /// version (graph, index and density cache shared — the grown
    /// event has a new content-addressed cache key, so its old
    /// entries are simply never looked up again). Appending nothing
    /// new still publishes — occurrence deltas are usually part of a
    /// stream whose consumers key re-tests off the version stamp.
    pub fn add_event_occurrences(
        &self,
        id: EventId,
        nodes: &[NodeId],
    ) -> Result<Arc<Snapshot>, IngestError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        check_nodes(base.graph.num_nodes(), nodes)?;
        let mut events = (*base.events).clone();
        events.add_occurrences(id, nodes)?;
        self.log_wal(
            base.version + 1,
            &WalRecord::AddOccurrences {
                event: id.0,
                nodes: nodes.to_vec(),
            },
        )?;
        let next = self.publish(Snapshot::assemble(
            base.graph.clone(),
            base.vicinity.clone(),
            Arc::new(events),
            base.version + 1,
            Some(base.cache.clone()),
            self.cache_budget,
            base.relabel.clone(),
        ));
        self.maybe_checkpoint(&next);
        Ok(next)
    }

    /// Attach this context to a data directory, making every later
    /// ingest crash-safe: the mutation is appended and fsync'd to the
    /// WAL *before* the new version is published, and a checkpoint
    /// (snapshot + WAL rotation) runs on the writer path every
    /// [`StoreOptions::snapshot_every`] records.
    ///
    /// An empty directory is initialized with a snapshot of the
    /// current state. A non-empty directory must hold exactly this
    /// context's state (version and fingerprints) — recover it with
    /// [`TescContext::open_dir`] first — otherwise
    /// [`PersistError::StateMismatch`] is returned. Attaching also
    /// applies the recovery cleanup plan: torn WAL tails are truncated
    /// away and unusable files deleted.
    pub fn with_durability(self, dir: &Path, options: StoreOptions) -> Result<Self, PersistError> {
        let store = Store::open(dir, options)?;
        let recovery = store.recover()?;
        let snap = self.snapshot();
        if let Some(rec) = &recovery {
            if rec.version != snap.version
                || rec.graph.fingerprint() != snap.graph.fingerprint()
                || rec.events.fingerprint() != snap.events.fingerprint()
            {
                return Err(PersistError::StateMismatch {
                    disk_version: rec.version,
                    ctx_version: snap.version,
                });
            }
        }
        let durability = Durability::attach(
            store,
            recovery.as_ref(),
            snap.version,
            &snap.graph,
            &snap.events,
        )?;
        *self.durability.lock().expect("durability lock poisoned") = Some(durability);
        Ok(self)
    }

    /// Recover the context persisted in `dir` — newest valid snapshot
    /// plus clean WAL tail — rebuild its derived state (vicinity index
    /// over `max_level` with `threads` workers), and re-attach
    /// durability for further ingestion. Recovery runs exactly once.
    /// `Ok(None)` means the directory holds no data yet: construct the
    /// initial context yourself and call
    /// [`TescContext::with_durability`].
    pub fn open_dir(
        dir: &Path,
        max_level: u32,
        threads: usize,
        options: StoreOptions,
    ) -> Result<Option<Self>, PersistError> {
        let store = Store::open(dir, options)?;
        let Some(recovery) = store.recover()? else {
            return Ok(None);
        };
        let ctx = Self::try_with_threads_at(
            recovery.graph.clone(),
            recovery.events.clone(),
            max_level,
            threads,
            recovery.version,
        )
        .map_err(|e| PersistError::Io {
            path: dir.to_path_buf(),
            message: format!("recovered state failed validation: {e}"),
        })?;
        let snap = ctx.snapshot();
        let durability = Durability::attach(
            store,
            Some(&recovery),
            snap.version,
            &snap.graph,
            &snap.events,
        )?;
        *ctx.durability.lock().expect("durability lock poisoned") = Some(durability);
        Ok(Some(ctx))
    }

    /// Force a checkpoint now (snapshot of the current version, WAL
    /// rotation, pruning). `Ok(false)` if no data directory is
    /// attached.
    pub fn checkpoint(&self) -> Result<bool, PersistError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let snap = self.snapshot();
        let mut durability = self.durability.lock().expect("durability lock poisoned");
        match durability.as_mut() {
            Some(d) => {
                d.checkpoint(snap.version, &snap.graph, &snap.events)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The attached data directory, if any.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.durability
            .lock()
            .expect("durability lock poisoned")
            .as_ref()
            .map(|d| d.dir().to_path_buf())
    }

    /// WAL records appended since the last checkpoint (`None` without
    /// an attached data directory).
    pub fn wal_records_since_checkpoint(&self) -> Option<u64> {
        self.durability
            .lock()
            .expect("durability lock poisoned")
            .as_ref()
            .map(|d| d.records_since_checkpoint())
    }
}

fn check_nodes(num_nodes: usize, nodes: &[NodeId]) -> Result<(), IngestError> {
    match nodes.iter().find(|&&v| v as usize >= num_nodes) {
        Some(&node) => Err(IngestError::NodeOutOfRange { node, num_nodes }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TescConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tesc_graph::generators::grid;

    fn ctx() -> (TescContext, EventId, EventId) {
        let mut events = EventStore::new();
        let a = events.add_event("a", (0..15).collect());
        let b = events.add_event("b", (8..25).collect());
        (TescContext::new(grid(12, 12), events, 2), a, b)
    }

    #[test]
    fn snapshots_are_pinned_and_versions_monotone() {
        let (ctx, _, b) = ctx();
        let s1 = ctx.snapshot();
        assert_eq!(s1.version(), 1);
        let s2 = ctx.add_edges(&[(0, 143)]).unwrap();
        assert_eq!(s2.version(), 2);
        assert!(!s1.graph().has_edge(0, 143), "old snapshot untouched");
        assert!(s2.graph().has_edge(0, 143));
        let s3 = ctx.add_event_occurrences(b, &[140]).unwrap();
        assert_eq!(s3.version(), 3);
        assert_eq!(s1.events().size(b), 17);
        assert!(s3.events().nodes(b).contains(&140));
        assert_eq!(ctx.version(), 3);
        // Graph-only deltas share the event store; event-only deltas
        // share graph and index.
        assert!(Arc::ptr_eq(&s1.events, &s2.events));
        assert!(Arc::ptr_eq(&s2.graph, &s3.graph));
        assert!(Arc::ptr_eq(&s2.vicinity, &s3.vicinity));
        // Graph changes invalidate the cache; event-only deltas keep
        // riding the warm one (entries depend only on the graph).
        assert!(!Arc::ptr_eq(s1.density_cache(), s2.density_cache()));
        assert!(Arc::ptr_eq(s2.density_cache(), s3.density_cache()));
    }

    #[test]
    fn cache_budget_survives_graph_changing_ingests() {
        let (ctx, _, b) = ctx();
        assert_eq!(ctx.cache_budget(), None);
        let budget = 1 << 20;
        let ctx = ctx.with_cache_budget(Some(budget));
        assert_eq!(ctx.cache_budget(), Some(budget));
        // Re-publish keeps the version but swaps in a budgeted cache.
        let s1 = ctx.snapshot();
        assert_eq!(s1.version(), 1);
        assert_eq!(s1.density_cache().byte_budget(), Some(budget));
        // Graph-changing ingests rebuild the cache — still budgeted.
        let s2 = ctx.add_edges(&[(0, 143)]).unwrap();
        assert_eq!(s2.density_cache().byte_budget(), Some(budget));
        // Event-only ingests reuse the (budgeted) cache.
        let s3 = ctx.add_event_occurrences(b, &[140]).unwrap();
        assert!(Arc::ptr_eq(s2.density_cache(), s3.density_cache()));
        // And the budget can be lifted again.
        let ctx = ctx.with_cache_budget(None);
        assert_eq!(ctx.snapshot().density_cache().byte_budget(), None);
    }

    #[test]
    fn constructor_validates_initial_events() {
        let mut events = EventStore::new();
        events.add_event("oob", vec![999]);
        let err = TescContext::try_new(grid(4, 4), events, 1).unwrap_err();
        assert_eq!(
            err,
            IngestError::NodeOutOfRange {
                node: 999,
                num_nodes: 16
            }
        );
    }

    #[test]
    #[should_panic(expected = "invalid initial event store")]
    fn panicking_constructor_reports_bad_events() {
        let mut events = EventStore::new();
        events.add_event("oob", vec![999]);
        let _ = TescContext::new(grid(4, 4), events, 1);
    }

    #[test]
    fn incremental_index_matches_rebuild() {
        let (ctx, _, _) = ctx();
        let s = ctx.add_edges(&[(0, 143), (5, 100), (77, 3)]).unwrap();
        assert_eq!(*s.vicinity(), VicinityIndex::build(s.graph(), 2));
    }

    #[test]
    fn duplicate_only_delta_is_a_no_op() {
        let (ctx, _, _) = ctx();
        let s1 = ctx.snapshot();
        let s2 = ctx.add_edges(&[(0, 1), (1, 0)]).unwrap(); // grid edge already present
        assert_eq!(s2.version(), 1);
        assert!(Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn ingest_validation_publishes_nothing() {
        let (ctx, _, b) = ctx();
        assert_eq!(
            ctx.add_edges(&[(3, 3)]).unwrap_err(),
            IngestError::BadEdge(EdgeError::SelfLoop { node: 3 })
        );
        assert!(matches!(
            ctx.add_edges(&[(0, 999)]).unwrap_err(),
            IngestError::BadEdge(EdgeError::OutOfRange { .. })
        ));
        assert_eq!(
            ctx.add_event_occurrences(b, &[999]).unwrap_err(),
            IngestError::NodeOutOfRange {
                node: 999,
                num_nodes: 144
            }
        );
        assert_eq!(
            ctx.add_event("a", vec![1]).unwrap_err(),
            IngestError::BadEvent(EventStoreError::DuplicateName { name: "a".into() })
        );
        assert!(matches!(
            ctx.add_event_occurrences(EventId(9), &[1]).unwrap_err(),
            IngestError::BadEvent(EventStoreError::UnknownEvent { .. })
        ));
        assert_eq!(ctx.version(), 1, "failed ingests publish nothing");
    }

    #[test]
    fn snapshot_engine_serves_old_and_new_versions() {
        let (ctx, a, b) = ctx();
        let old = ctx.snapshot();
        ctx.add_edges(&[(0, 143)]).unwrap();
        let new = ctx.snapshot();
        let cfg = TescConfig::new(2).with_sample_size(80);
        let r_old = old
            .engine()
            .test(
                old.events().nodes(a),
                old.events().nodes(b),
                &cfg,
                &mut StdRng::seed_from_u64(3),
            )
            .unwrap();
        let r_new = new
            .engine()
            .test(
                new.events().nodes(a),
                new.events().nodes(b),
                &cfg,
                &mut StdRng::seed_from_u64(3),
            )
            .unwrap();
        assert!(r_old.n_refs >= 3 && r_new.n_refs >= 3);
        // The old snapshot must reproduce its pre-ingestion numbers
        // even after the write: pin-stability.
        let r_old_again = old
            .engine()
            .test(
                old.events().nodes(a),
                old.events().nodes(b),
                &cfg,
                &mut StdRng::seed_from_u64(3),
            )
            .unwrap();
        assert_eq!(r_old, r_old_again);
    }

    #[test]
    fn event_pair_and_run_batch_helpers() {
        let (ctx, a, b) = ctx();
        let snap = ctx.snapshot();
        let pair = snap.event_pair(a, b);
        assert_eq!(pair.label, "a×b");
        let req = BatchRequest::new(TescConfig::new(1).with_sample_size(40))
            .with_seed(11)
            .with_pair(pair);
        let report = snap.run_batch(&req);
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].result.is_ok());
        assert!(snap.density_cache().bfs_invocations() > 0, "cache engaged");
    }

    #[test]
    fn relabeling_context_rebuilds_on_graph_change_and_shares_otherwise() {
        let (base_ctx, a, b) = ctx();
        let rctx = base_ctx.with_relabeling(true);
        assert!(rctx.relabeling());
        let s1 = rctx.snapshot();
        assert_eq!(s1.version(), 1, "re-publish keeps the version");
        let r1 = s1.relabeled().expect("substrate attached").clone();
        assert!(r1.matches_original(s1.graph()));
        // Graph change: fresh substrate for the new graph.
        let s2 = rctx.add_edges(&[(0, 143)]).unwrap();
        let r2 = s2.relabeled().expect("substrate maintained").clone();
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert!(r2.matches_original(s2.graph()));
        // Event-only change: shared.
        let s3 = rctx.add_event_occurrences(b, &[140]).unwrap();
        assert!(Arc::ptr_eq(&r2, s3.relabeled().unwrap()));
        // And the snapshot engine's results equal a plain context's,
        // bit for bit, after the same ingestion history.
        let (plain, _, pb) = ctx();
        plain.add_edges(&[(0, 143)]).unwrap();
        plain.add_event_occurrences(pb, &[140]).unwrap();
        let cfg = TescConfig::new(2).with_sample_size(80);
        let run = |snap: &Snapshot| {
            snap.engine()
                .test(
                    snap.events().nodes(a),
                    snap.events().nodes(b),
                    &cfg,
                    &mut StdRng::seed_from_u64(5),
                )
                .unwrap()
        };
        assert_eq!(run(&rctx.snapshot()), run(&plain.snapshot()));
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let (ctx, a, b) = ctx();
        let cfg = TescConfig::new(1).with_sample_size(30);
        std::thread::scope(|scope| {
            let ctx = &ctx;
            for t in 0..3u64 {
                scope.spawn(move || {
                    for i in 0..5u64 {
                        let snap = ctx.snapshot();
                        let r = snap.engine().test(
                            snap.events().nodes(a),
                            snap.events().nodes(b),
                            &cfg,
                            &mut StdRng::seed_from_u64(t * 100 + i),
                        );
                        assert!(r.is_ok());
                    }
                });
            }
            scope.spawn(move || {
                for i in 0..5u32 {
                    ctx.add_edges(&[(i, 143 - i)]).unwrap();
                    ctx.add_event_occurrences(b, &[100 + i]).unwrap();
                }
            });
        });
        assert_eq!(ctx.version(), 11);
        let last = ctx.snapshot();
        assert_eq!(*last.vicinity(), VicinityIndex::build(last.graph(), 2));
    }
}
