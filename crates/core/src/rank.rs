//! Top-K event-pair ranking — the paper's headline application as a
//! subsystem.
//!
//! The TESC test exists so an analyst can *rank* all candidate event
//! pairs of a scenario by two-event structural correlation and surface
//! the strongest interactions (the DBLP keyword study of Sec. 5.3
//! tests every keyword pair and reports the extremes). [`rank_pairs`]
//! scores a pair set — all-pairs of an event store
//! ([`tesc_events::EventStore::event_pairs`]), one event against every
//! partner (`pairs_with`), or an explicit candidate list — through the
//! pair-set planner ([`crate::planner::PairSetPlan`]), so the density
//! work of the whole set is fused: one BFS per distinct reference
//! node, however many pairs share it.
//!
//! **Scores.** A pair's score is its z-score read in the tested
//! direction ([`direction_score`]): `z` under [`Tail::Upper`]
//! (attraction hunts), `−z` under [`Tail::Lower`] (repulsion hunts),
//! `|z|` two-sided. Ranking is deterministic: descending score
//! (`tesc_stats::rank::cmp_score_desc`, the comparator shared with the
//! CLI table and the bench's recall@k agreement) with ties broken by
//! label, then by content seed — so the ranking is invariant under
//! permutation of the input pair list.
//!
//! **Seeds are content-addressed.** Unlike [`crate::batch`], whose
//! test `i` draws from an *index*-derived stream, ranking derives each
//! pair's RNG stream from its normalized occurrence sets
//! ([`content_seed`]): the same pair gets the same sample no matter
//! where it sits in the candidate list, which is what makes the
//! permutation invariance above exact (asserted in
//! `tests/ranking.rs`).
//!
//! **Top-K early exit.** With [`RankRequest::with_top_k`], pairs whose
//! *remaining significance budget* cannot reach the current K-th score
//! are dropped before their correlate stage runs: from a pair's
//! scattered density vectors, `|S| ≤ n(n−1)/2 − max(T_a, T_b)` (pairs
//! tied in either vector contribute nothing to Kendall's S) and the
//! tie-corrected `Var(S)` is exact, so `S_max / √Var(S)` bounds the
//! achievable |z| — and therefore the score under every tail
//! convention. Spearman's bound is `√(n−1)` (|ρ| ≤ 1). The bound is
//! sound, so the reported top K is identical to ranking everything and
//! truncating; only the pruned tail is skipped. (Importance-sampled
//! pairs use the weighted t̃ estimator, which this bound does not
//! cover — they are always scored.)

use crate::batch::{EventPair, PairOutcome};
use crate::engine::{normalize, Statistic, TescConfig, TescEngine, TescError, TescResult};
use crate::planner::{PairSetPlan, PairVectors};
use rand::SplitMix64;
use std::time::{Duration, Instant};
use tesc_graph::{Adjacency, Interrupted, NodeId};
use tesc_stats::kendall::var_s_tie_corrected;
use tesc_stats::rank::{cmp_score_desc, nontrivial_tie_group_sizes};
use tesc_stats::{Tail, TestOutcome};

/// Execution mode of a ranking run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RankMode {
    /// Every pair is scored at the full configured sample size.
    #[default]
    Exact,
    /// Progressive sampling ([`crate::anytime`]): pairs start at a
    /// small sample, get a `1 − eps` confidence interval on their
    /// projected full-sample score, and only escalate (by geometric
    /// doubling) while that interval straddles the running top-K
    /// cutoff. `eps = 0` makes every interval infinite, so nothing is
    /// decided early and the output is bit-identical to
    /// [`RankMode::Exact`]
    /// (property-tested in `tests/anytime.rs`). Requires a top-K
    /// cutoff: without [`RankRequest::with_top_k`] the request runs
    /// exact.
    Anytime {
        /// Per-decision error budget, in `[0, 1)`.
        eps: f64,
    },
}

impl RankMode {
    /// Anytime mode with error budget `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ eps < 1`.
    pub fn anytime(eps: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&eps),
            "anytime eps must be in [0, 1), got {eps}"
        );
        RankMode::Anytime { eps }
    }
}

impl std::fmt::Display for RankMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankMode::Exact => write!(f, "exact"),
            RankMode::Anytime { eps } => write!(f, "anytime:{eps}"),
        }
    }
}

/// A ranking request: the candidate pairs, one shared test
/// configuration, a master seed and the optional top-K cutoff.
#[derive(Debug, Clone, PartialEq)]
pub struct RankRequest {
    /// Candidate pairs (order does not affect the ranking — seeds are
    /// content-addressed and ties break by label).
    pub pairs: Vec<EventPair>,
    /// Configuration applied to every test.
    pub cfg: TescConfig,
    /// Master seed; each pair draws from
    /// [`content_seed`]`(seed, &pair.a, &pair.b)`.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Report only the best K pairs, enabling the significance-budget
    /// early exit. `None` ranks everything.
    pub top_k: Option<usize>,
    /// Exact or progressive execution ([`RankMode::Exact`] default).
    pub mode: RankMode,
}

impl RankRequest {
    /// Empty request with configuration `cfg`, seed 0, automatic
    /// thread count, no top-K cutoff.
    pub fn new(cfg: TescConfig) -> Self {
        RankRequest {
            pairs: Vec::new(),
            cfg,
            seed: 0,
            threads: 0,
            top_k: None,
            mode: RankMode::Exact,
        }
    }

    /// Set the execution mode (see [`RankMode`]).
    pub fn with_mode(mut self, mode: RankMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Keep only the best `k` pairs, pruning candidates whose
    /// significance budget cannot reach the running cutoff.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "top-k must be at least 1");
        self.top_k = Some(k);
        self
    }

    /// Append one candidate pair.
    pub fn with_pair(mut self, pair: EventPair) -> Self {
        self.pairs.push(pair);
        self
    }

    /// Append many candidate pairs.
    pub fn with_pairs(mut self, pairs: impl IntoIterator<Item = EventPair>) -> Self {
        self.pairs.extend(pairs);
        self
    }

    /// The worker count this request resolves to on this machine.
    pub fn effective_threads(&self) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        };
        requested.clamp(1, self.pairs.len().max(1))
    }
}

/// One ranked pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RankEntry {
    /// 1-based rank (best first).
    pub rank: usize,
    /// Position in [`RankRequest::pairs`].
    pub index: usize,
    /// The pair's label, copied from the request.
    pub label: String,
    /// [`direction_score`] of the outcome — the ranking key.
    pub score: f64,
    /// The full test result (bit-identical to an independent
    /// [`TescEngine::test`] with this pair's content seed).
    pub result: TescResult,
    /// The escalation tier (requested sample size) at which this
    /// pair's score was frozen. Equals `cfg.sample_size` for exact
    /// runs and for anytime pairs that went the distance; smaller for
    /// pairs the progressive executor decided early (whose `result`
    /// then reflects that smaller sample and whose `score` is the
    /// projected full-sample estimate).
    pub decided_at_n: usize,
}

/// Everything a ranking run produced, plus fused-pass diagnostics.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Ranked entries, best first (truncated to K when requested).
    pub ranked: Vec<RankEntry>,
    /// Candidates skipped by the top-K significance-budget early exit
    /// (provably unable to reach the cutoff — never part of the top K).
    pub pruned: usize,
    /// Candidates whose test failed (empty events, too few reference
    /// nodes, …), with the error in place.
    pub failed: Vec<PairOutcome>,
    /// Total candidate pairs in the request (ranked entries beyond a
    /// top-K cutoff are computed but not reported, so
    /// `ranked + pruned + failed` can undershoot this).
    pub candidates: usize,
    /// Distinct reference nodes of the fused density pass.
    pub distinct_refs: usize,
    /// Total sampled reference nodes across all pairs (what a per-pair
    /// executor would BFS); `sampled_refs / distinct_refs` is the
    /// work-sharing factor.
    pub sampled_refs: usize,
    /// Density BFS searches the fused pass actually ran (an attached
    /// cache can skip nodes entirely).
    pub fused_bfs: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Planner rounds executed: 1 for exact runs, the number of
    /// escalation tiers actually visited for anytime runs.
    pub rounds: usize,
    /// `true` when the engine's [`tesc_graph::Budget`] ran out
    /// mid-escalation and the progressive executor returned the best
    /// ranking decided so far instead of finishing: entries then carry
    /// the tier they were decided at in [`RankEntry::decided_at_n`],
    /// which may be below the requested sample size even under
    /// `eps = 0`. Always `false` for runs with an unlimited budget.
    pub degraded: bool,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl RankReport {
    /// One-line human summary
    /// (`ranked 10 of 28 pairs (15 pruned, 3 failed); fused 1200 BFS
    /// for 8400 sampled refs (7.0× shared)`).
    pub fn summary(&self) -> String {
        let total = self.candidates;
        let share = if self.distinct_refs > 0 {
            self.sampled_refs as f64 / self.distinct_refs as f64
        } else {
            1.0
        };
        let mut s = format!(
            "ranked {} of {} pairs ({} pruned, {} failed); fused {} BFS for {} sampled refs ({share:.1}× shared)",
            self.ranked.len(),
            total,
            self.pruned,
            self.failed.len(),
            self.fused_bfs,
            self.sampled_refs,
        );
        if self.rounds > 1 {
            s.push_str(&format!("; {} progressive rounds", self.rounds));
        }
        s
    }

    /// Mean reference samples drawn per candidate pair across all
    /// rounds — the anytime tier's work measure (an exact run spends
    /// `≈ sample_size` per pair; a progressive run less, when pairs
    /// are decided early).
    pub fn mean_samples_per_pair(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.sampled_refs as f64 / self.candidates as f64
        }
    }
}

/// Content-addressed per-pair seed: derived from the master seed and
/// the *normalized occurrence sets* only (FNV-1a over both sets,
/// SplitMix64-finalized), never from the pair's position — so a pair
/// draws the same reference sample wherever it appears in a candidate
/// list, and the ranking is permutation-invariant. Insensitive to
/// occurrence order and duplicates, sensitive to the (a, b) slot
/// assignment and to the master seed.
pub fn content_seed(master: u64, a: &[NodeId], b: &[NodeId]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    fn fnv(mut h: u64, x: u64) -> u64 {
        h ^= x;
        h.wrapping_mul(0x100_0000_01b3)
    }
    let (a, b) = (normalize(a), normalize(b));
    let mut h = fnv(FNV_OFFSET, master);
    h = fnv(h, a.len() as u64);
    for &v in &a {
        h = fnv(h, v as u64 + 1);
    }
    h = fnv(h, u64::MAX); // separator: ({1},{}) ≠ ({},{1})
    h = fnv(h, b.len() as u64);
    for &v in &b {
        h = fnv(h, v as u64 + 1);
    }
    SplitMix64(h).next_u64()
}

/// A test outcome's ranking score: the z-score read in the tested
/// direction — `z` under [`Tail::Upper`], `−z` under [`Tail::Lower`],
/// `|z|` two-sided — so "bigger is stronger evidence" holds for every
/// tail convention.
#[inline]
pub fn direction_score(outcome: &TestOutcome) -> f64 {
    match outcome.tail {
        Tail::Upper => outcome.z,
        Tail::Lower => -outcome.z,
        Tail::TwoSided => outcome.z.abs(),
    }
}

/// Sound upper bound on the achievable |z| (and therefore on the
/// [`direction_score`]) of a pair, from its scattered density vectors
/// alone — the "remaining significance budget" of the top-K early
/// exit. `None` means no usable bound (importance-sampled pairs).
pub(crate) fn score_bound(vectors: &PairVectors, statistic: Statistic) -> Option<f64> {
    let PairVectors::Uniform { sa, sb } = vectors else {
        return None;
    };
    let n = sa.len();
    match statistic {
        Statistic::KendallTau => {
            let u = nontrivial_tie_group_sizes(sa);
            let v = nontrivial_tie_group_sizes(sb);
            let var_s = var_s_tie_corrected(n, &u, &v);
            if var_s <= 0.0 {
                return Some(0.0); // everything tied: z is exactly 0
            }
            let tied_pairs = |g: &[usize]| {
                g.iter()
                    .map(|&s| (s as u64) * (s as u64 - 1) / 2)
                    .sum::<u64>()
            };
            let half = (n as u64) * (n as u64 - 1) / 2;
            // Pairs tied in either vector contribute 0 to S.
            let s_max = half - tied_pairs(&u).max(tied_pairs(&v));
            Some(s_max as f64 / var_s.sqrt())
        }
        // |ρ| ≤ 1 and z = ρ·√(n−1).
        Statistic::SpearmanRho => Some(((n - 1) as f64).sqrt()),
    }
}

/// Rank a candidate pair set through the fused planner. See the module
/// docs for scoring, determinism and the top-K early exit; per-pair
/// scores are bit-identical to independent [`TescEngine::test`] calls
/// seeded with [`content_seed`] (asserted in `tests/ranking.rs` for
/// all five samplers). Under [`RankMode::Anytime`] with a top-K
/// cutoff, execution is delegated to the progressive executor in
/// [`crate::anytime`].
pub fn rank_pairs<G: Adjacency>(engine: &TescEngine<'_, G>, req: &RankRequest) -> RankReport {
    let start = Instant::now();
    match rank_pairs_budgeted(engine, req) {
        Ok(report) => report,
        // Only reachable when the engine carries a real budget: every
        // candidate is reported as interrupted, nothing partial leaks.
        Err(i) => RankReport {
            ranked: Vec::new(),
            pruned: 0,
            failed: req
                .pairs
                .iter()
                .enumerate()
                .map(|(index, pair)| PairOutcome {
                    index,
                    label: pair.label.clone(),
                    result: Err(TescError::Interrupted(i)),
                })
                .collect(),
            candidates: req.pairs.len(),
            distinct_refs: 0,
            sampled_refs: 0,
            fused_bfs: 0,
            threads: req.effective_threads(),
            rounds: 0,
            degraded: false,
            wall: start.elapsed(),
        },
    }
}

/// [`rank_pairs`] with the engine's [`tesc_graph::Budget`] surfaced as
/// a typed error. With an unlimited budget this never fails. Under
/// [`RankMode::Anytime`] with a top-K cutoff an exhausted budget
/// *degrades* instead of failing whenever at least one escalation tier
/// completed: the report comes back `Ok` with
/// [`RankReport::degraded`] set and the best ranking decided so far.
/// `Err` means no usable ranking existed when the budget ran out.
pub fn rank_pairs_budgeted<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &RankRequest,
) -> Result<RankReport, Interrupted> {
    if let RankMode::Anytime { eps } = req.mode {
        if req.top_k.is_some() {
            return crate::anytime::rank_pairs_anytime(engine, req, eps);
        }
    }
    rank_pairs_exact(engine, req)
}

/// The exact executor: one planner pass at the full sample size.
fn rank_pairs_exact<G: Adjacency>(
    engine: &TescEngine<'_, G>,
    req: &RankRequest,
) -> Result<RankReport, Interrupted> {
    let start = Instant::now();
    let threads = req.effective_threads();
    let seeds: Vec<u64> = req
        .pairs
        .iter()
        .map(|p| content_seed(req.seed, &p.a, &p.b))
        .collect();
    let plan = PairSetPlan::build(engine, &req.pairs, &req.cfg, &seeds, threads);
    let fused = plan.run_density_budgeted(threads, engine.budget())?;

    // Stage (c) + ranking: serial in index order so the evolving top-K
    // cutoff is schedule-independent. (Correlation is O(n log n) per
    // pair — noise next to the density BFS work above.)
    let mut computed: Vec<(f64, usize)> = Vec::new();
    let mut results: Vec<Option<TescResult>> = vec![None; req.pairs.len()];
    let mut failed = Vec::new();
    let mut pruned = 0usize;
    // Running best-K scores, descending — only maintained when a
    // top-K cutoff exists (and truncated to k, so inserts stay O(k)
    // instead of growing the Vec toward O(P²) on all-pairs runs).
    let mut top_scores: Vec<f64> = Vec::new();
    for (index, slot) in results.iter_mut().enumerate() {
        engine.budget().check()?;
        let vectors = match plan.vectors(index, &fused) {
            Ok(v) => v,
            Err(_) => {
                failed.push(plan.finish_pair(index, &fused));
                continue;
            }
        };
        if let Some(k) = req.top_k {
            if top_scores.len() >= k {
                let cutoff = top_scores[k - 1];
                if let Some(bound) = score_bound(&vectors, req.cfg.statistic) {
                    if bound < cutoff {
                        pruned += 1;
                        continue;
                    }
                }
            }
        }
        let result = plan.result_from_vectors(index, &vectors);
        let score = direction_score(&result.outcome);
        if let Some(k) = req.top_k {
            if top_scores.len() < k || score > top_scores[k - 1] {
                let pos = top_scores.partition_point(|&s| s >= score);
                top_scores.insert(pos, score);
                top_scores.truncate(k);
            }
        }
        computed.push((score, index));
        *slot = Some(result);
    }

    // Deterministic full order: score desc, label asc, content seed
    // asc (permutation-invariant), index last for absolute totality.
    computed.sort_by(|&(sa, ia), &(sb, ib)| {
        cmp_score_desc(sa, sb)
            .then_with(|| req.pairs[ia].label.cmp(&req.pairs[ib].label))
            .then_with(|| seeds[ia].cmp(&seeds[ib]))
            .then(ia.cmp(&ib))
    });
    if let Some(k) = req.top_k {
        computed.truncate(k);
    }
    let ranked = computed
        .into_iter()
        .enumerate()
        .map(|(pos, (score, index))| RankEntry {
            rank: pos + 1,
            index,
            label: req.pairs[index].label.clone(),
            score,
            result: results[index].take().expect("computed result"),
            decided_at_n: req.cfg.sample_size,
        })
        .collect();
    Ok(RankReport {
        ranked,
        pruned,
        failed,
        candidates: req.pairs.len(),
        distinct_refs: plan.distinct_refs(),
        sampled_refs: plan.sampled_refs(),
        fused_bfs: fused.bfs_run(),
        threads,
        rounds: 1,
        degraded: false,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tesc_graph::generators::{barabasi_albert, grid};
    use tesc_stats::kendall::{kendall_tau, KendallMethod};
    use tesc_stats::SignificanceLevel;

    #[test]
    fn content_seed_is_order_dup_and_position_insensitive() {
        let s1 = content_seed(7, &[3, 1, 2], &[9, 8]);
        assert_eq!(s1, content_seed(7, &[1, 2, 3, 3, 1], &[8, 9, 9]));
        assert_ne!(s1, content_seed(8, &[1, 2, 3], &[8, 9]), "master matters");
        assert_ne!(s1, content_seed(7, &[8, 9], &[1, 2, 3]), "slots matter");
        assert_ne!(
            content_seed(7, &[1], &[]),
            content_seed(7, &[], &[1]),
            "separator keeps ({{1}},∅) and (∅,{{1}}) apart"
        );
    }

    #[test]
    fn direction_score_reads_the_tested_tail() {
        let mk =
            |z: f64, tail: Tail| TestOutcome::from_z(0.1, z, tail, SignificanceLevel::FIVE_PERCENT);
        assert_eq!(direction_score(&mk(2.0, Tail::Upper)), 2.0);
        assert_eq!(direction_score(&mk(-2.0, Tail::Lower)), 2.0);
        assert_eq!(direction_score(&mk(-2.0, Tail::TwoSided)), 2.0);
        assert_eq!(direction_score(&mk(-2.0, Tail::Upper)), -2.0);
    }

    #[test]
    fn kendall_score_bound_dominates_actual_z() {
        // Random tied-heavy vectors: the significance budget must
        // bound the achievable |z| in every case.
        let mut rng = StdRng::seed_from_u64(11);
        for n in [5usize, 20, 60] {
            for _ in 0..64 {
                let sa: Vec<f64> = (0..n).map(|_| (rng.gen_range(0..4u32)) as f64).collect();
                let sb: Vec<f64> = (0..n).map(|_| (rng.gen_range(0..4u32)) as f64).collect();
                let bound = score_bound(
                    &PairVectors::Uniform {
                        sa: sa.clone(),
                        sb: sb.clone(),
                    },
                    Statistic::KendallTau,
                )
                .unwrap();
                let z = kendall_tau(&sa, &sb, KendallMethod::MergeSort).z;
                assert!(
                    z.abs() <= bound + 1e-12,
                    "n={n}: |z| = {} exceeds budget {bound}",
                    z.abs()
                );
            }
        }
        // Spearman: √(n−1).
        let b = score_bound(
            &PairVectors::Uniform {
                sa: vec![0.0; 10],
                sb: vec![0.0; 10],
            },
            Statistic::SpearmanRho,
        )
        .unwrap();
        assert_eq!(b, 9.0f64.sqrt());
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_ranking() {
        let g = barabasi_albert(1500, 3, &mut StdRng::seed_from_u64(21));
        let mut rng = StdRng::seed_from_u64(22);
        let shared: Vec<u32> = (0..40).collect();
        let mut req = RankRequest::new(
            TescConfig::new(1)
                .with_sample_size(120)
                .with_tail(Tail::Upper),
        )
        .with_seed(5)
        .with_threads(1);
        for i in 0..8 {
            let base = rng.gen_range(0..1400u32);
            req = req.with_pair(EventPair::new(
                format!("p{i}"),
                shared.clone(),
                (base..base + 40).collect(),
            ));
        }
        let engine = TescEngine::new(&g);
        let full = rank_pairs(&engine, &req);
        assert_eq!(full.ranked.len(), 8);
        assert_eq!(full.pruned, 0, "no cutoff, nothing pruned");
        for w in full.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "descending scores");
        }
        for k in [1usize, 3, 8] {
            let top = rank_pairs(&engine, &req.clone().with_top_k(k));
            assert_eq!(top.ranked.len(), k.min(8));
            for (f, t) in full.ranked.iter().zip(&top.ranked) {
                assert_eq!(f.label, t.label, "top-{k} must be the full prefix");
                assert_eq!(f.score.to_bits(), t.score.to_bits());
                assert_eq!(f.result, t.result);
            }
        }
    }

    #[test]
    fn significance_budget_prunes_hopeless_pairs() {
        // A maximally attracted pair (identical events) sets a cutoff
        // far above what tiny-population pairs can ever reach
        // (|z| ≤ S_max/√Var(S) shrinks with n), so with top-k = 1 the
        // early exit must skip their correlate stage — and the podium
        // must equal the unpruned ranking's.
        let g = barabasi_albert(2000, 3, &mut StdRng::seed_from_u64(31));
        let strong: Vec<u32> = (0..100).collect();
        let mut req = RankRequest::new(
            TescConfig::new(1)
                .with_sample_size(200)
                .with_tail(Tail::Upper),
        )
        .with_seed(3)
        .with_threads(1)
        .with_pair(EventPair::new("strong", strong.clone(), strong));
        for i in 0..4u32 {
            req = req.with_pair(EventPair::new(
                format!("tiny{i}"),
                vec![1900 + 2 * i],
                vec![1901 + 2 * i],
            ));
        }
        let engine = TescEngine::new(&g);
        let full = rank_pairs(&engine, &req);
        let top = rank_pairs(&engine, &req.clone().with_top_k(1));
        assert_eq!(top.ranked.len(), 1);
        assert_eq!(top.ranked[0].label, "strong");
        assert_eq!(top.ranked[0].result, full.ranked[0].result);
        assert!(
            top.pruned >= 1,
            "tiny-budget pairs must be pruned, got {}",
            top.pruned
        );
    }

    #[test]
    fn failures_are_collected_not_fatal() {
        let g = grid(8, 8);
        let engine = TescEngine::new(&g);
        let req = RankRequest::new(TescConfig::new(1).with_sample_size(20))
            .with_threads(1)
            .with_pair(EventPair::new("ok", vec![0, 1, 2], vec![8, 9]))
            .with_pair(EventPair::new("empty", vec![], vec![]));
        let report = rank_pairs(&engine, &req);
        assert_eq!(report.ranked.len(), 1);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].label, "empty");
        assert!(report.summary().contains("ranked 1 of 2 pairs"));
    }

    #[test]
    #[should_panic(expected = "top-k must be at least 1")]
    fn zero_top_k_rejected() {
        let _ = RankRequest::new(TescConfig::new(1)).with_top_k(0);
    }
}
